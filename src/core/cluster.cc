#include "core/cluster.hh"

#include <algorithm>

#include "agents/accuracy.hh"
#include "sim/logging.hh"
#include "workload/token_stream.hh"
#include "workload/toolset_factory.hh"

namespace agentsim::core
{

std::string_view
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastLoaded:
        return "least-loaded";
      case RoutePolicy::CacheAffinity:
        return "cache-affinity";
    }
    AGENTSIM_PANIC("unknown routing policy");
}

namespace
{

/** One serving node: an engine plus its per-benchmark tool belts. */
struct Node
{
    std::unique_ptr<serving::LlmEngine> engine;
    std::vector<std::unique_ptr<tools::ToolSet>> toolsByBenchmark;
    int assigned = 0;

    tools::ToolSet &
    toolsFor(workload::Benchmark bench)
    {
        return *toolsByBenchmark[static_cast<std::size_t>(bench)];
    }

    /** In-flight load proxy: running batch + waiting queue. */
    std::size_t
    load() const
    {
        return engine->runningCount() + engine->queueDepth();
    }
};

struct ClusterState
{
    ClusterResult result;
    sim::Tick firstSubmit = -1;
    sim::Tick lastFinish = 0;
};

/** Stable identity of a workload component (for affinity hashing). */
std::uint64_t
workloadKey(const WorkloadSpec &spec)
{
    if (spec.chatbot)
        return sim::fnv1a("chatbot");
    return sim::hashCombine(
        sim::fnv1a(agents::agentName(spec.agent)),
        sim::fnv1a(workload::benchmarkName(spec.bench)));
}

int
route(RoutePolicy policy, const WorkloadSpec &spec,
      std::vector<Node> &nodes, int &rr_next)
{
    const int n = static_cast<int>(nodes.size());
    switch (policy) {
      case RoutePolicy::RoundRobin: {
          const int pick = rr_next;
          rr_next = (rr_next + 1) % n;
          return pick;
      }
      case RoutePolicy::LeastLoaded: {
          int best = 0;
          for (int i = 1; i < n; ++i) {
              if (nodes[static_cast<std::size_t>(i)].load() <
                  nodes[static_cast<std::size_t>(best)].load()) {
                  best = i;
              }
          }
          return best;
      }
      case RoutePolicy::CacheAffinity: {
          // Agent-aware: chatbot traffic has near-zero cross-request
          // prefix reuse, so it simply load-balances; agent requests
          // go to their workflow's home node unless it is clearly
          // overloaded relative to the cluster minimum.
          int least = 0;
          for (int i = 1; i < n; ++i) {
              if (nodes[static_cast<std::size_t>(i)].load() <
                  nodes[static_cast<std::size_t>(least)].load()) {
                  least = i;
              }
          }
          if (spec.chatbot)
              return least;
          const int home = static_cast<int>(
              workloadKey(spec) % static_cast<std::uint64_t>(n));
          const std::size_t min_load =
              nodes[static_cast<std::size_t>(least)].load();
          if (nodes[static_cast<std::size_t>(home)].load() >
              min_load + 6) {
              return least;
          }
          return home;
      }
    }
    AGENTSIM_PANIC("unknown routing policy");
}

void
noteCompletion(ClusterState &state, sim::Tick submit, sim::Tick finish,
               std::size_t workload_index)
{
    if (state.firstSubmit < 0)
        state.firstSubmit = submit;
    state.lastFinish = std::max(state.lastFinish, finish);
    const double seconds = sim::toSeconds(finish - submit);
    state.result.e2eSeconds.add(seconds);
    state.result.perWorkloadSeconds[workload_index].add(seconds);
    ++state.result.completed;
}

sim::Task<void>
clusterAgentWorker(const ClusterConfig &config, sim::Simulation &sim,
                   Node &node, const WorkloadSpec &spec,
                   std::size_t workload_index, std::uint64_t index,
                   ClusterState &state)
{
    workload::TaskGenerator gen(spec.bench, config.seed);
    agents::AgentContext ctx;
    ctx.sim = &sim;
    ctx.engine = node.engine.get();
    ctx.tools = &node.toolsFor(spec.bench);
    ctx.task = gen.sample(index);
    ctx.config = spec.agentConfig;
    ctx.config.modelQuality =
        agents::modelQuality(config.engineConfig.model.name);
    ctx.kind = spec.agent;
    ctx.seed = config.seed;

    auto agent = agents::makeAgent(spec.agent);
    const sim::Tick submit = sim.now();
    agents::AgentResult result = co_await agent->run(ctx);
    (void)result;
    noteCompletion(state, submit, sim.now(), workload_index);
}

sim::Task<void>
clusterChatWorker(const ClusterConfig &config, sim::Simulation &sim,
                  Node &node, std::size_t workload_index,
                  std::uint64_t index, ClusterState &state)
{
    const workload::ShareGptSampler sampler(config.seed);
    const workload::ChatRequest chat = sampler.sample(index);
    constexpr std::int64_t system_tokens = 40;
    serving::GenRequest req;
    req.prompt = workload::makeTokens(
        workload::streamId(config.seed, "chat.system"), system_tokens);
    const auto convo = workload::makeTokens(
        workload::substream(workload::streamId(config.seed,
                                               "chat.convo"),
                            index),
        std::max<std::int64_t>(1, chat.promptTokens - system_tokens));
    req.prompt.insert(req.prompt.end(), convo.begin(), convo.end());
    req.maxNewTokens = chat.outputTokens;

    req.sessionId = sim::hashCombine(config.seed, index);
    const sim::Tick submit = sim.now();
    co_await node.engine->generate(std::move(req));
    noteCompletion(state, submit, sim.now(), workload_index);
}

sim::Task<void>
clusterDriver(const ClusterConfig &config, sim::Simulation &sim,
              std::vector<Node> &nodes, ClusterState &state)
{
    sim::Rng arrivals(config.seed, "cluster.arrivals", 0);
    sim::Rng mixer(config.seed, "cluster.mix", 0);
    std::vector<double> weights;
    weights.reserve(config.mix.size());
    for (const auto &spec : config.mix)
        weights.push_back(spec.weight);

    int rr_next = 0;
    std::vector<sim::Task<void>> workers;
    workers.reserve(static_cast<std::size_t>(config.numRequests));
    for (int i = 0; i < config.numRequests; ++i) {
        if (i > 0) {
            co_await sim::delaySec(
                sim, arrivals.exponential(1.0 / config.qps));
        }
        const std::size_t which = mixer.categorical(weights);
        const WorkloadSpec &spec = config.mix[which];
        const int target =
            route(config.policy, spec, nodes, rr_next);
        Node &node = nodes[static_cast<std::size_t>(target)];
        ++node.assigned;
        const auto index = static_cast<std::uint64_t>(i);
        if (spec.chatbot) {
            workers.push_back(clusterChatWorker(config, sim, node,
                                                which, index, state));
        } else {
            workers.push_back(clusterAgentWorker(
                config, sim, node, spec, which, index, state));
        }
    }
    co_await sim::allOf(std::move(workers));
}

} // namespace

double
ClusterResult::aggregateHitRate() const
{
    double weighted = 0.0;
    int total = 0;
    for (const auto &node : nodes) {
        weighted += node.cacheHitRate * node.requests;
        total += node.requests;
    }
    return total > 0 ? weighted / total : 0.0;
}

ClusterResult
runCluster(const ClusterConfig &config)
{
    AGENTSIM_ASSERT(config.numNodes > 0, "cluster needs nodes");
    AGENTSIM_ASSERT(!config.mix.empty(), "cluster needs a workload");
    for (const auto &spec : config.mix) {
        if (!spec.chatbot &&
            !agents::agentSupports(spec.agent, spec.bench)) {
            AGENTSIM_FATAL("unsupported agent/benchmark in mix");
        }
    }

    sim::Simulation sim;
    std::vector<Node> nodes;
    nodes.reserve(static_cast<std::size_t>(config.numNodes));
    for (int i = 0; i < config.numNodes; ++i) {
        Node node;
        auto engine_cfg = config.engineConfig;
        engine_cfg.seed =
            sim::hashCombine(config.seed,
                             static_cast<std::uint64_t>(i));
        node.engine =
            std::make_unique<serving::LlmEngine>(sim, engine_cfg);
        for (int b = 0; b <= static_cast<int>(
                                 workload::Benchmark::HumanEval);
             ++b) {
            node.toolsByBenchmark.push_back(workload::makeToolSet(
                static_cast<workload::Benchmark>(b), sim,
                *node.engine, config.seed));
        }
        nodes.push_back(std::move(node));
    }

    ClusterState state;
    state.result.perWorkloadSeconds.resize(config.mix.size());
    auto drive = clusterDriver(config, sim, nodes, state);
    sim.run();
    AGENTSIM_ASSERT(drive.done(), "cluster driver did not finish");
    AGENTSIM_ASSERT(state.result.completed == config.numRequests,
                    "cluster lost requests");

    ClusterResult out = std::move(state.result);
    out.makespanSeconds = sim::toSeconds(
        state.lastFinish - std::max<sim::Tick>(0, state.firstSubmit));
    for (const auto &node : nodes) {
        NodeResult nr;
        nr.requests = node.assigned;
        nr.cacheHitRate = node.engine->cacheStats().hitRate();
        nr.engineStats = node.engine->stats();
        out.nodes.push_back(nr);
    }
    return out;
}

} // namespace agentsim::core
