/**
 * @file
 * Single-request characterization probes (paper §IV-A/B, §V): run an
 * agent over a set of tasks one request at a time against a warm
 * serving engine, and collect per-request latency, token, GPU-phase,
 * KV-memory and energy measurements.
 */

#ifndef AGENTSIM_CORE_PROBE_HH
#define AGENTSIM_CORE_PROBE_HH

#include <vector>

#include "agents/workflows.hh"
#include "serving/engine.hh"
#include "stats/summary.hh"
#include "telemetry/session.hh"
#include "workload/benchmark.hh"

namespace agentsim::core
{

/** Engine preset: Llama-3.1-8B on one A100 (paper default). */
serving::EngineConfig enginePreset8b();

/** Engine preset: Llama-3.1-70B on 8 A100s, TP=8. */
serving::EngineConfig enginePreset70b();

/** Probe configuration. */
struct ProbeConfig
{
    agents::AgentKind agent{};
    workload::Benchmark bench{};
    agents::AgentConfig agentConfig;
    serving::EngineConfig engineConfig;
    /** Number of tasks, processed strictly one at a time. */
    int numTasks = 20;
    std::uint64_t seed = 1;

    /**
     * Optional telemetry collection (see ServeConfig::telemetry).
     * The probe additionally snapshots the registry after every
     * task, giving a per-request metrics time series.
     */
    telemetry::SessionTelemetry *telemetry = nullptr;

    /**
     * Optional causal span collector. Defaults to the session's
     * collector when `telemetry` is set; point it elsewhere to keep
     * span trees out of the session. Every task then yields a
     * critical-path blame vector in RequestProbe::blame.
     */
    telemetry::SpanCollector *spans = nullptr;
};

/** Per-request window measurements around one agent run. */
struct RequestProbe
{
    agents::AgentResult result;
    /** Node GPU energy within the request window (incl. idle), Wh. */
    double energyWh = 0.0;
    /** GPU-busy seconds within the window. */
    double gpuBusySeconds = 0.0;
    double gpuPrefillSeconds = 0.0;
    double gpuDecodeSeconds = 0.0;
    /** DCGM-style SM-active seconds within the window. */
    double gpuCoreActiveSeconds = 0.0;
    /** Time-average / peak KV-cache bytes over the window. */
    double kvAvgBytes = 0.0;
    double kvMaxBytes = 0.0;
    /** FLOPs the engine attributed to this request's calls. */
    double flops = 0.0;
    /** Critical-path blame (all zero unless spans were collected). */
    telemetry::BlameVector blame;
};

/** Probe output: all requests plus common aggregates. */
struct ProbeResult
{
    ProbeConfig config;
    std::vector<RequestProbe> requests;

    double accuracy() const;
    stats::SampleSet e2eSeconds() const;
    double meanLlmCalls() const;
    double meanToolCalls() const;
    double meanEnergyWh() const;
    double meanFlops() const;
    /** Mean share of the request window the GPU sat idle. */
    double meanGpuIdleFraction() const;

    /** Attributed cost summed over all rollouts (their LLM calls). */
    serving::CostLedger totalCost() const;
};

/** Run the probe. */
ProbeResult runProbe(const ProbeConfig &config);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_PROBE_HH
