#include "core/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace agentsim::core
{

void
Table::header(std::vector<std::string> columns)
{
    AGENTSIM_ASSERT(!columns.empty(), "empty table header");
    header_ = std::move(columns);
}

void
Table::row(std::vector<std::string> cells)
{
    AGENTSIM_ASSERT(cells.size() == header_.size(),
                    "row width %zu != header width %zu", cells.size(),
                    header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += " " + cells[c];
            line += std::string(widths[c] - cells[c].size(), ' ');
            line += " |";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (std::size_t w : widths)
        sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out;
    out += "== " + title_ + " ==\n";
    out += sep;
    out += renderRow(header_);
    out += sep;
    for (const auto &r : rows_)
        out += renderRow(r);
    out += sep;
    return out;
}

void
Table::print() const
{
    const std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);

    if (const char *dir = std::getenv("AGENTSIM_CSV_DIR");
        dir != nullptr && dir[0] != '\0') {
        const std::string path =
            std::string(dir) + "/" + slug() + ".csv";
        if (!writeCsv(path))
            AGENTSIM_WARN("could not write %s", path.c_str());
    }
}

namespace
{

/** Quote a CSV cell if it contains a delimiter, quote or newline. */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::renderCsv() const
{
    std::string out;
    auto append_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                out += ',';
            out += csvCell(cells[i]);
        }
        out += '\n';
    };
    append_row(header_);
    for (const auto &r : rows_)
        append_row(r);
    return out;
}

bool
Table::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string text = renderCsv();
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
}

std::string
Table::slug() const
{
    std::string out;
    bool last_dash = false;
    for (char c : title_) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        if (ok) {
            out += static_cast<char>(
                c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
            last_dash = false;
        } else if (!last_dash && !out.empty()) {
            out += '-';
            last_dash = true;
        }
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out.empty() ? "table" : out;
}

std::string
fmtDouble(double v, int precision)
{
    return sim::strfmt("%.*f", precision, v);
}

std::string
fmtPercent(double fraction, int precision)
{
    return sim::strfmt("%.*f%%", precision, fraction * 100.0);
}

std::string
fmtSeconds(double seconds)
{
    if (seconds < 0.001)
        return sim::strfmt("%.0f us", seconds * 1e6);
    if (seconds < 1.0)
        return sim::strfmt("%.1f ms", seconds * 1e3);
    return sim::strfmt("%.2f s", seconds);
}

std::string
fmtCount(double v)
{
    if (std::abs(v - std::round(v)) < 1e-9)
        return sim::strfmt("%lld", static_cast<long long>(
                                       std::llround(v)));
    return sim::strfmt("%.1f", v);
}

std::string
fmtEng(double v, const std::string &unit)
{
    const char *prefixes[] = {"", "k", "M", "G", "T", "P"};
    int idx = 0;
    double x = v;
    while (std::abs(x) >= 1000.0 && idx < 5) {
        x /= 1000.0;
        ++idx;
    }
    return sim::strfmt("%.2f %s%s", x, prefixes[idx], unit.c_str());
}

} // namespace agentsim::core
