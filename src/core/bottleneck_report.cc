#include "core/bottleneck_report.hh"

#include <algorithm>
#include <set>

#include "core/cost_report.hh"
#include "sim/strfmt.hh"
#include "telemetry/critical_path.hh"

namespace agentsim::core
{

namespace
{

constexpr std::array<telemetry::BlameCategory,
                     telemetry::kBlameCategories>
    kCategories{telemetry::BlameCategory::Queue,
                telemetry::BlameCategory::Prefill,
                telemetry::BlameCategory::Decode,
                telemetry::BlameCategory::Tool,
                telemetry::BlameCategory::Migration,
                telemetry::BlameCategory::Idle};

} // namespace

Table
renderBlameTable(const telemetry::SpanCollector &spans,
                 const std::string &title)
{
    Table table(title);
    std::vector<std::string> header{"workflow", "requests", "mean_s",
                                    "p95_s"};
    for (auto cat : kCategories) {
        header.push_back(std::string(telemetry::blameCategoryName(cat)) +
                         "_mean_s");
        header.push_back(std::string(telemetry::blameCategoryName(cat)) +
                         "_p95_s");
    }
    table.header(std::move(header));
    for (const auto &agg : spans.aggregates()) {
        std::vector<std::string> row{
            agg.workflow, fmtCount(static_cast<double>(agg.requests)),
            fmtDouble(agg.meanLatency(), 3),
            fmtDouble(agg.latencyP95.value(), 3)};
        for (auto cat : kCategories) {
            row.push_back(fmtDouble(agg.meanBlame(cat), 3));
            row.push_back(fmtDouble(agg.p95Blame(cat), 3));
        }
        table.row(std::move(row));
    }
    return table;
}

void
exportBlameMetrics(const telemetry::SpanCollector &spans,
                   telemetry::MetricsRegistry &registry, sim::Tick now)
{
    registry
        .counter("agentsim_blame_requests_total",
                 "Requests folded into blame aggregates")
        .set(static_cast<double>(spans.requestsFinished()));
    registry
        .gauge("agentsim_blame_exemplars_retained",
               "Tail exemplars currently retained (full span trees)")
        .set(now, static_cast<double>(spans.exemplars().size()));
    registry
        .counter("agentsim_blame_exemplars_evicted",
                 "Exemplar candidates dropped or displaced by the cap")
        .set(static_cast<double>(spans.exemplarsEvicted()));

    for (const auto &agg : spans.aggregates()) {
        const std::string label =
            "_" + sanitizeMetricLabel(agg.workflow);
        registry
            .counter("agentsim_blame_requests" + label,
                     "Requests in this workflow's blame aggregate")
            .set(static_cast<double>(agg.requests));
        for (auto cat : kCategories) {
            const std::string name(telemetry::blameCategoryName(cat));
            registry
                .gauge("agentsim_blame_mean_" + name + "_seconds" +
                           label,
                       "Mean critical-path seconds blamed on " + name)
                .set(now, agg.meanBlame(cat));
            registry
                .gauge("agentsim_blame_p95_" + name + "_seconds" +
                           label,
                       "p95 critical-path seconds blamed on " + name)
                .set(now, agg.p95Blame(cat));
        }
    }
}

void
emitSpanExemplars(const telemetry::SpanCollector &spans,
                  telemetry::TraceSink &trace)
{
    if (spans.exemplars().empty())
        return;
    trace.processName(telemetry::TracePid::kSpans, "tail exemplars");
    std::uint64_t lane = 0;
    for (const auto &ex : spans.exemplars()) {
        ++lane;
        const telemetry::CriticalPath path =
            telemetry::criticalPath(ex.tree);
        std::set<std::uint32_t> on_path(path.spans.begin(),
                                        path.spans.end());
        trace.threadName(
            telemetry::TracePid::kSpans, lane,
            sim::strfmt("%s req %llu%s%s", ex.tree.workflow.c_str(),
                        static_cast<unsigned long long>(
                            ex.tree.requestKey),
                        ex.sloViolated ? " [SLO]" : "",
                        sim::strfmt(" (%.2fs)", ex.latencySeconds)
                            .c_str()));
        // Nestable async events pair like a stack in timestamp order,
        // so interleave begins and ends sorted by time: ends before
        // begins at the same tick, inner (later-begun) ends first,
        // outer (longer) begins first. Properly nested spans and
        // same-start sibling fan-out then pair exactly; only true
        // partial crossings (DAG tools) can swap labels.
        struct Event
        {
            sim::Tick at;
            bool isEnd;
            std::uint32_t span;
        };
        std::vector<Event> events;
        events.reserve(ex.tree.spans.size() * 2);
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(ex.tree.spans.size());
             ++i) {
            events.push_back({ex.tree.spans[i].start, false, i});
            events.push_back({ex.tree.spans[i].end, true, i});
        }
        std::stable_sort(
            events.begin(), events.end(),
            [&](const Event &a, const Event &b) {
                if (a.at != b.at)
                    return a.at < b.at;
                if (a.isEnd != b.isEnd)
                    return a.isEnd;
                const telemetry::Span &sa = ex.tree.spans[a.span];
                const telemetry::Span &sb = ex.tree.spans[b.span];
                if (a.isEnd)
                    return sa.start > sb.start;
                return sa.end > sb.end;
            });
        for (const Event &ev : events) {
            const telemetry::Span &span = ex.tree.spans[ev.span];
            const std::string name =
                span.label.empty()
                    ? std::string(telemetry::spanKindName(span.kind))
                    : span.label;
            if (ev.isEnd) {
                trace.asyncEnd(telemetry::TracePid::kSpans, lane, name,
                               "span", ev.at);
                continue;
            }
            std::string args = sim::strfmt(
                "\"kind\":\"%s\",\"category\":\"%s\","
                "\"critical_path\":%s",
                telemetry::spanKindName(span.kind),
                telemetry::blameCategoryName(
                    telemetry::blameCategory(span.kind)),
                on_path.count(ev.span) != 0 ? "true" : "false");
            if (span.followsFrom != telemetry::kNoSpan) {
                args += sim::strfmt(",\"follows_from\":%u",
                                    span.followsFrom);
            }
            trace.asyncBegin(telemetry::TracePid::kSpans, lane, name,
                             "span", ev.at, args);
        }
    }
}

} // namespace agentsim::core
