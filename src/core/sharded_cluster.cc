#include "core/sharded_cluster.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "agents/accuracy.hh"
#include "agents/workflows.hh"
#include "sim/awaitable.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/token_stream.hh"
#include "workload/toolset_factory.hh"

namespace agentsim::core
{

namespace
{

/** Driver-side bookkeeping; every field is touched only by shard 0's
 *  event loop (arrival coroutine + completion-report events). */
struct DriverState
{
    stats::SampleSet e2eSeconds;
    int completed = 0;
    int solved = 0;
    sim::Tick firstSubmit = -1;
    sim::Tick lastReport = 0;
    /** Dispatched-minus-reported per node: the router's (stale)
     *  in-flight view for LeastLoaded. */
    std::vector<int> inflight;
    int nextRoundRobin = 0;
};

/** One serving node, owned by its shard. Everything in here is only
 *  ever touched from the node shard's event loop. */
struct NodeRuntime
{
    sim::Simulation *sim = nullptr;
    std::unique_ptr<serving::LlmEngine> engine;
    /** One tool belt per agent benchmark in the mix. */
    std::map<workload::Benchmark, std::unique_ptr<tools::ToolSet>>
        tools;
    /** Keep-alive for in-flight episode coroutines. */
    std::vector<sim::Task<void>> episodes;
    int requests = 0;
};

int
routeRequest(const ShardedClusterConfig &config, DriverState &state)
{
    if (config.policy == RoutePolicy::LeastLoaded) {
        int best = 0;
        for (int n = 1; n < config.simShards; ++n) {
            if (state.inflight[static_cast<std::size_t>(n)] <
                state.inflight[static_cast<std::size_t>(best)])
                best = n;
        }
        return best;
    }
    const int node = state.nextRoundRobin;
    state.nextRoundRobin =
        (state.nextRoundRobin + 1) % config.simShards;
    return node;
}

/** One chatbot request on the node's local engine (the sharded twin
 *  of serving_system's chatWorker). */
sim::Task<void>
nodeChatEpisode(const ShardedClusterConfig &config, NodeRuntime &node,
                std::uint64_t index, bool *solved_out)
{
    const workload::ShareGptSampler sampler(config.seed);
    const workload::ChatRequest chat = sampler.sample(index);
    constexpr std::int64_t system_tokens = 40;
    serving::GenRequest req;
    req.prompt = workload::makeTokens(
        workload::streamId(config.seed, "chat.system"), system_tokens);
    const auto convo = workload::makeTokens(
        workload::substream(
            workload::streamId(config.seed, "chat.convo"), index),
        std::max<std::int64_t>(1, chat.promptTokens - system_tokens));
    req.prompt.insert(req.prompt.end(), convo.begin(), convo.end());
    req.maxNewTokens = chat.outputTokens;
    req.sessionId = sim::hashCombine(config.seed, index);
    serving::GenResult r =
        co_await node.engine->generate(std::move(req));
    *solved_out = !r.failed;
}

/** One agent rollout on the node's local engine/tool belt (the
 *  sharded twin of serving_system's agentWorker). */
sim::Task<void>
nodeAgentEpisode(const ShardedClusterConfig &config, NodeRuntime &node,
                 const WorkloadSpec &spec, std::uint64_t index,
                 bool *solved_out)
{
    workload::TaskGenerator gen(spec.bench, config.seed);
    agents::AgentContext ctx;
    ctx.sim = node.sim;
    ctx.engine = node.engine.get();
    ctx.tools = node.tools.at(spec.bench).get();
    ctx.task = gen.sample(index);
    ctx.config = spec.agentConfig;
    ctx.config.modelQuality =
        agents::modelQuality(config.engineConfig.model.name);
    ctx.kind = spec.agent;
    ctx.seed = config.seed;
    auto agent = agents::makeAgent(spec.agent);
    agents::AgentResult result = co_await agent->run(ctx);
    *solved_out = result.solved;
}

/**
 * Episode wrapper: runs on the node shard from dispatch to
 * completion, then posts the completion report back to the driver
 * shard one completion latency later.
 */
sim::Task<void>
nodeEpisode(const ShardedClusterConfig &config,
            sim::ShardedSimulation &shards, NodeRuntime &node,
            int nodeIndex, const WorkloadSpec &spec,
            std::uint64_t index, sim::Tick submit, DriverState &state)
{
    bool solved = false;
    if (spec.chatbot)
        co_await nodeChatEpisode(config, node, index, &solved);
    else
        co_await nodeAgentEpisode(config, node, spec, index, &solved);
    const sim::Tick report =
        node.sim->now() +
        sim::fromSeconds(config.completionLatencySeconds);
    shards.post(nodeIndex + 1, 0, report,
                [&state, nodeIndex, submit, solved, report] {
                    state.e2eSeconds.add(
                        sim::toSeconds(report - submit));
                    ++state.completed;
                    state.solved += solved ? 1 : 0;
                    --state.inflight[static_cast<std::size_t>(
                        nodeIndex)];
                    state.lastReport =
                        std::max(state.lastReport, report);
                });
}

/** Arrival + routing process on the driver shard. */
sim::Task<void>
driverLoop(const ShardedClusterConfig &config,
           sim::ShardedSimulation &shards,
           std::vector<NodeRuntime> &nodes, DriverState &state)
{
    sim::Simulation &sim = shards.shard(0);
    sim::Rng arrivals(config.seed, "arrivals", 0);
    sim::Rng mixer(config.seed, "cluster.mix", 0);
    std::vector<double> weights;
    weights.reserve(config.mix.size());
    for (const auto &spec : config.mix)
        weights.push_back(spec.weight);

    const sim::Tick routing =
        sim::fromSeconds(config.routingLatencySeconds);
    for (int i = 0; i < config.numRequests; ++i) {
        if (i > 0) {
            co_await sim::delaySec(
                sim, arrivals.exponential(1.0 / config.qps));
        }
        const std::size_t which = config.mix.size() > 1
                                      ? mixer.categorical(weights)
                                      : 0;
        const WorkloadSpec &spec = config.mix[which];
        const int nodeIndex = routeRequest(config, state);
        const auto index = static_cast<std::uint64_t>(i);
        const sim::Tick submit = sim.now();
        if (state.firstSubmit < 0)
            state.firstSubmit = submit;
        ++state.inflight[static_cast<std::size_t>(nodeIndex)];
        NodeRuntime &node = nodes[static_cast<std::size_t>(nodeIndex)];
        // The dispatch lands on the node shard one routing latency
        // out; the episode coroutine is created *there*, on the
        // node's own event loop.
        shards.post(0, nodeIndex + 1, submit + routing,
                    [&config, &shards, &node, nodeIndex, &spec, index,
                     submit, &state] {
                        ++node.requests;
                        node.episodes.push_back(nodeEpisode(
                            config, shards, node, nodeIndex, spec,
                            index, submit, state));
                    });
    }
}

} // namespace

void
validateShardedClusterConfig(const ShardedClusterConfig &config)
{
    if (config.simShards < 1)
        AGENTSIM_FATAL("sharded cluster needs >= 1 node shard");
    if (config.numRequests <= 0)
        AGENTSIM_FATAL("sharded cluster without requests");
    if (config.qps <= 0)
        AGENTSIM_FATAL("sharded cluster needs positive QPS");
    if (config.mix.empty())
        AGENTSIM_FATAL("sharded cluster needs a workload mix");
    for (const auto &spec : config.mix) {
        if (spec.weight <= 0)
            AGENTSIM_FATAL("workload-mix weights must be positive");
        if (!spec.chatbot &&
            !agents::agentSupports(spec.agent, spec.bench))
            AGENTSIM_FATAL("unsupported agent/benchmark pair in mix");
    }
    if (config.policy == RoutePolicy::CacheAffinity)
        AGENTSIM_FATAL("sharded cluster routes RoundRobin or "
                       "LeastLoaded (CacheAffinity needs the "
                       "single-sim cluster)");
    if (config.routingLatencySeconds <= 0 ||
        config.completionLatencySeconds <= 0)
        AGENTSIM_FATAL("cross-shard latencies must be positive — they "
                       "are the conservative window's safety bound");
    const double floor = std::min(config.routingLatencySeconds,
                                  config.completionLatencySeconds);
    if (config.windowSeconds > floor)
        AGENTSIM_FATAL("windowSeconds %.6f exceeds the cross-shard "
                       "latency floor %.6f — conservative sync would "
                       "be unsound",
                       config.windowSeconds, floor);
}

ShardedClusterResult
runShardedCluster(const ShardedClusterConfig &config)
{
    validateShardedClusterConfig(config);

    const double window_seconds = config.windowSeconds > 0
                                      ? config.windowSeconds
                                      : std::min(
                                            config.routingLatencySeconds,
                                            config.completionLatencySeconds);

    sim::ShardedConfig sharded;
    sharded.shards = config.simShards + 1; // + driver shard
    sharded.windowTicks =
        std::max<sim::Tick>(1, sim::fromSeconds(window_seconds));
    sharded.parallel = config.parallel;
    sim::ShardedSimulation shards(sharded);

    // Build each node on its shard's executive. Construction runs on
    // this thread before run(), which is the documented safe window.
    std::vector<NodeRuntime> nodes(
        static_cast<std::size_t>(config.simShards));
    for (int n = 0; n < config.simShards; ++n) {
        NodeRuntime &node = nodes[static_cast<std::size_t>(n)];
        node.sim = &shards.shard(n + 1);
        node.engine = std::make_unique<serving::LlmEngine>(
            *node.sim, config.engineConfig);
        for (const auto &spec : config.mix) {
            if (spec.chatbot || node.tools.count(spec.bench) > 0)
                continue;
            node.tools.emplace(spec.bench,
                               workload::makeToolSet(
                                   spec.bench, *node.sim,
                                   *node.engine, config.seed));
        }
    }

    DriverState state;
    state.inflight.assign(static_cast<std::size_t>(config.simShards),
                          0);
    auto drive = driverLoop(config, shards, nodes, state);
    shards.run();
    AGENTSIM_ASSERT(drive.done(), "sharded driver did not finish");
    AGENTSIM_ASSERT(state.completed == config.numRequests,
                    "sharded cluster lost requests: %d of %d",
                    state.completed, config.numRequests);

    ShardedClusterResult out;
    out.e2eSeconds = std::move(state.e2eSeconds);
    out.completed = state.completed;
    out.solved = state.solved;
    out.makespanSeconds = sim::toSeconds(
        state.lastReport - std::max<sim::Tick>(0, state.firstSubmit));
    out.nodes.resize(static_cast<std::size_t>(config.simShards));
    for (int n = 0; n < config.simShards; ++n) {
        auto &dst = out.nodes[static_cast<std::size_t>(n)];
        const auto &node = nodes[static_cast<std::size_t>(n)];
        dst.requests = node.requests;
        dst.engineStats = node.engine->stats();
        dst.cacheHitRate = node.engine->cacheStats().hitRate();
        dst.shardStats =
            shards.shardStats()[static_cast<std::size_t>(n + 1)];
    }
    out.driverStats = shards.shardStats()[0];
    out.totalEvents = shards.totalEvents();
    out.wallSeconds = shards.wallSeconds();
    out.eventsPerSecond = shards.eventsPerSecond();
    out.windowsExecuted = shards.windowsExecuted();
    for (const auto &st : shards.shardStats())
        out.crossShardMessages += st.messagesOut;
    return out;
}

} // namespace agentsim::core
