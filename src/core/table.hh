/**
 * @file
 * Fixed-width console tables used by the bench binaries to print the
 * paper's rows and series.
 */

#ifndef AGENTSIM_CORE_TABLE_HH
#define AGENTSIM_CORE_TABLE_HH

#include <string>
#include <vector>

namespace agentsim::core
{

/**
 * A simple left-aligned text table with a title and a header row.
 */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (fixes the column count). */
    void header(std::vector<std::string> columns);

    /** Append one row (must match the header width). */
    void row(std::vector<std::string> cells);

    /** Render the table. */
    std::string render() const;

    /**
     * Render and write to stdout. If the AGENTSIM_CSV_DIR environment
     * variable is set, also write `<dir>/<slug(title)>.csv` so
     * experiment results can be plotted directly.
     */
    void print() const;

    /** RFC-4180-style CSV rendering (header + rows). */
    std::string renderCsv() const;

    /** Write the CSV rendering to @p path. @return success. */
    bool writeCsv(const std::string &path) const;

    /** Filesystem-safe slug of the table title. */
    std::string slug() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers for table cells. */
std::string fmtDouble(double v, int precision = 2);
std::string fmtPercent(double fraction, int precision = 1);
std::string fmtSeconds(double seconds);
std::string fmtCount(double v);
/** Engineering notation for big magnitudes: 1.23 k/M/G/T. */
std::string fmtEng(double v, const std::string &unit = "");

} // namespace agentsim::core

#endif // AGENTSIM_CORE_TABLE_HH
