/**
 * @file
 * Machine-readable performance reports and regression comparison.
 *
 * A PerfReport is a flat, ordered map of metric name -> value that a
 * bench binary writes as BENCH_agentsim.json when run with --report.
 * It mixes two kinds of numbers on purpose:
 *   - sim-domain results (latency percentiles, throughput, energy):
 *     deterministic for a given seed, so any drift is a behaviour
 *     change;
 *   - simulator self-timing (events/sec, wall seconds): noisy host
 *     numbers that track the simulator's own performance.
 *
 * compareReports() diffs two reports and flags regressions beyond a
 * relative threshold, inferring the "good" direction from the metric
 * name (seconds/percentile/joule metrics want to go down, rate and
 * throughput metrics up). bench/perf_report_diff wraps it as a CLI
 * that exits non-zero on regression, giving CI a one-line gate:
 *
 *   fig14_qps_sweep --report base.json        # on the base commit
 *   fig14_qps_sweep --report cand.json        # on the candidate
 *   perf_report_diff base.json cand.json --threshold 0.1
 */

#ifndef AGENTSIM_CORE_PERF_REPORT_HH
#define AGENTSIM_CORE_PERF_REPORT_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace agentsim::core
{

/** Flat named-metric report (insertion-ordered). */
class PerfReport
{
  public:
    /** Set (or overwrite) one metric. */
    void set(const std::string &name, double value);

    /** Look up a metric by name. */
    std::optional<double> get(const std::string &name) const;

    /** All metrics in insertion order. */
    const std::vector<std::pair<std::string, double>> &metrics() const
    {
        return metrics_;
    }

    bool empty() const { return metrics_.empty(); }

    /** Free-form provenance string ("fig14_qps_sweep"). */
    void setGenerator(const std::string &generator);
    const std::string &generator() const { return generator_; }

    /** Render the report as a JSON document. */
    std::string renderJson() const;

    /** Write renderJson() to @p path. @return success. */
    bool write(const std::string &path) const;

    /**
     * Parse a report previously produced by renderJson(). Tolerant of
     * whitespace but intentionally minimal — it reads this module's
     * own output format, not arbitrary JSON.
     * @return std::nullopt on malformed input.
     */
    static std::optional<PerfReport> parse(const std::string &json);

    /** Read and parse @p path. @return std::nullopt on any failure. */
    static std::optional<PerfReport> load(const std::string &path);

  private:
    std::vector<std::pair<std::string, double>> metrics_;
    std::string generator_;

    std::size_t findIndex(const std::string &name) const;
};

/** Which way a metric improves. */
enum class MetricDirection
{
    LowerIsBetter,
    HigherIsBetter,
    /** No regression judgement (counts, sizes, informational). */
    Informational,
};

/**
 * Infer the improvement direction from a metric name: *_seconds, *_p50
 * / _p95 / _p99, *_joules and *_wh read as latency/cost (lower is
 * better); *_qps, *_per_second, *_rate, *goodput* and *attainment*
 * read as throughput/quality (higher is better); anything else is
 * informational.
 */
MetricDirection metricDirection(const std::string &name);

/** One metric's comparison outcome. */
struct MetricDelta
{
    std::string name;
    double base = 0.0;
    double candidate = 0.0;
    /** Relative change (candidate - base) / |base|. */
    double relative = 0.0;
    MetricDirection direction = MetricDirection::Informational;
    /** Candidate is worse than base beyond the threshold. */
    bool regressed = false;
    /** Candidate is better than base beyond the threshold. */
    bool improved = false;
};

/** Full comparison of two reports. */
struct CompareResult
{
    std::vector<MetricDelta> deltas;
    /** Metrics present in only one report (skipped). */
    std::vector<std::string> missing;
    bool hasRegression = false;
};

/**
 * Compare @p candidate against @p base: every metric present in both
 * reports is judged against @p threshold (relative change in the
 * metric's "worse" direction). Informational metrics never regress.
 */
CompareResult compareReports(const PerfReport &base,
                             const PerfReport &candidate,
                             double threshold);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_PERF_REPORT_HH
