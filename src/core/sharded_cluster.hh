/**
 * @file
 * Sharded cluster serving on the parallel discrete-event engine.
 *
 * Each serving node — a full serving::LlmEngine with its local queues,
 * KV pool, tool belt and agent rollouts — runs on its own
 * ShardedSimulation shard (worker thread). Shard 0 hosts the driver:
 * the Poisson arrival process, the workload mixer and the router. The
 * only cross-shard interactions are the ones real clusters pay
 * network latency for, and that latency is exactly what makes
 * conservative synchronization safe (DESIGN.md §3k):
 *
 *   driver -> node   request dispatch    >= routingLatencySeconds
 *   node -> driver   completion report   >= completionLatencySeconds
 *
 * The conservative window is bounded by the smaller of the two, so no
 * shard can ever receive a message into its past.
 *
 * Determinism (docs/DETERMINISM.md): a run is bit-identical for a
 * fixed (seed, simShards) pair — across repeated runs *and* across
 * parallel vs sequential execution. Task content (what each request
 * asks, and therefore what the agents answer) is keyed by the global
 * request index, so it is identical across shard counts too; only
 * queueing/timing interleavings differ between shard counts.
 *
 * This is the scale path for million-request traces: it trades the
 * single-Simulation observability stack (shared trace sink, spans,
 * SLO tracker) for linear shard parallelism. Per-node engine stats
 * and the driver-side latency distribution are still collected.
 */

#ifndef AGENTSIM_CORE_SHARDED_CLUSTER_HH
#define AGENTSIM_CORE_SHARDED_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "core/cluster.hh"
#include "serving/engine.hh"
#include "sim/parallel.hh"
#include "stats/summary.hh"

namespace agentsim::core
{

/** Sharded-cluster experiment configuration. */
struct ShardedClusterConfig
{
    /** Serving nodes; one parallel-engine shard per node (the driver
     *  adds an internal shard of its own). */
    int simShards = 8;
    serving::EngineConfig engineConfig;
    /** RoundRobin or LeastLoaded (driver-side stale in-flight view —
     *  completion reports lag by completionLatencySeconds). */
    RoutePolicy policy = RoutePolicy::RoundRobin;
    /** Workload mix, sampled per request like runCluster's. */
    std::vector<WorkloadSpec> mix;
    /** Cluster-wide offered load (Poisson arrivals). */
    double qps = 4.0;
    int numRequests = 400;
    std::uint64_t seed = 1;
    /** Driver -> node dispatch latency lower bound, seconds. */
    double routingLatencySeconds = 0.002;
    /** Node -> driver completion-report latency lower bound, s. */
    double completionLatencySeconds = 0.002;
    /**
     * Conservative window, seconds. 0 derives the largest safe value:
     * min(routingLatencySeconds, completionLatencySeconds). Must not
     * exceed that bound (fatal otherwise).
     */
    double windowSeconds = 0.0;
    /** false: identical window loop on one thread (bit-identical to
     *  parallel; the determinism gate and single-core baseline). */
    bool parallel = true;
};

/** Per-node measurements. */
struct ShardNodeResult
{
    int requests = 0;
    double cacheHitRate = 0.0;
    serving::EngineStats engineStats;
    /** Parallel-engine counters for this node's shard. */
    sim::ShardStats shardStats;
};

/** Sharded-cluster measurements. */
struct ShardedClusterResult
{
    /** Client-observed latency: dispatch to completion report. */
    stats::SampleSet e2eSeconds;
    int completed = 0;
    int solved = 0;
    double makespanSeconds = 0.0;
    std::vector<ShardNodeResult> nodes;
    /** Driver-shard counters (arrivals, routing, reports). */
    sim::ShardStats driverStats;

    /** Parallel-engine totals. */
    std::uint64_t totalEvents = 0;
    double wallSeconds = 0.0;
    double eventsPerSecond = 0.0;
    std::uint64_t windowsExecuted = 0;
    std::uint64_t crossShardMessages = 0;

    double p50() const { return e2eSeconds.percentile(50.0); }
    double p95() const { return e2eSeconds.percentile(95.0); }

    double
    throughputQps() const
    {
        return makespanSeconds > 0 ? completed / makespanSeconds : 0.0;
    }
};

/** Validate @p config (fatal on nonsense: zero latencies, a window
 *  above the latency floor, an empty mix, ...). */
void validateShardedClusterConfig(const ShardedClusterConfig &config);

/** Run one sharded-cluster experiment. */
ShardedClusterResult
runShardedCluster(const ShardedClusterConfig &config);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_SHARDED_CLUSTER_HH
