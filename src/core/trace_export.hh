/**
 * @file
 * Chrome trace-event export of agent timelines: load the JSON into
 * chrome://tracing or Perfetto to inspect a request's LLM/tool
 * interleaving visually (the interactive version of Fig 3).
 */

#ifndef AGENTSIM_CORE_TRACE_EXPORT_HH
#define AGENTSIM_CORE_TRACE_EXPORT_HH

#include <string>

#include "agents/trace.hh"

namespace agentsim::core
{

/**
 * Render an agent request's timeline as Chrome trace-event JSON.
 *
 * LLM calls appear on one track, tool calls on another; durations are
 * in microseconds of virtual time.
 *
 * @param result the agent run to export.
 * @param process_name display name ("ReAct / HotpotQA #3").
 */
std::string toChromeTrace(const agents::AgentResult &result,
                          const std::string &process_name);

/** Write the trace to @p path. @return success. */
bool writeChromeTrace(const std::string &path,
                      const agents::AgentResult &result,
                      const std::string &process_name);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_TRACE_EXPORT_HH
