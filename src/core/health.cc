#include "core/health.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "telemetry/flight_recorder.hh"

namespace agentsim::core
{

std::string_view
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    AGENTSIM_PANIC("unknown breaker state");
}

double
NodeHealth::decayFactor(sim::Tick now, sim::Tick since) const
{
    if (now <= since || tau_ <= 0)
        return 1.0;
    return std::exp(-sim::toSeconds(now - since) / tau_);
}

void
NodeHealth::recordOutcome(sim::Tick now, bool failure)
{
    const double f = decayFactor(now, lastOutcome_);
    failures_ *= f;
    total_ *= f;
    total_ += 1.0;
    if (failure)
        failures_ += 1.0;
    lastOutcome_ = now;
}

void
NodeHealth::recordQueueDepth(sim::Tick now, double depth)
{
    if (lastQueue_ < 0) {
        queueEwma_ = depth;
    } else {
        const double f = decayFactor(now, lastQueue_);
        queueEwma_ = f * queueEwma_ + (1.0 - f) * depth;
    }
    lastQueue_ = now;
}

double
NodeHealth::failureRate(sim::Tick now) const
{
    const double f = decayFactor(now, lastOutcome_);
    const double total = total_ * f;
    return total > 1e-9 ? failures_ * f / total : 0.0;
}

double
NodeHealth::eventWeight(sim::Tick now) const
{
    return total_ * decayFactor(now, lastOutcome_);
}

void
NodeHealth::reset()
{
    failures_ = 0.0;
    total_ = 0.0;
}

HealthRegistry::HealthRegistry(const HealthConfig &config,
                               std::size_t num_nodes)
    : config_(config)
{
    entries_.reserve(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i)
        entries_.emplace_back(config_.ewmaTauSeconds);
}

void
HealthRegistry::transition(std::size_t node, BreakerState to,
                           sim::Tick now)
{
    Entry &e = entries_[node];
    if (e.state == to)
        return;
    e.state = to;
    const char *label = nullptr;
    switch (to) {
      case BreakerState::Open:
        e.openedAt = now;
        ++opens_;
        label = "breaker_open";
        break;
      case BreakerState::HalfOpen:
        e.probeSuccesses = 0;
        label = "breaker_half_open";
        break;
      case BreakerState::Closed:
        // Forget the failure history that opened the breaker, or the
        // stale EWMA would re-open it on the first new failure.
        e.health.reset();
        ++closes_;
        label = "breaker_close";
        break;
    }
    AGENTSIM_INFORM("node %zu circuit breaker -> %s", node,
                    std::string(breakerStateName(to)).c_str());
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kResilience,
                        static_cast<std::uint64_t>(node), label,
                        "resilience", now);
    }
    if (recorder_ != nullptr && to == BreakerState::Open) {
        recorder_->trigger(
            telemetry::IncidentTrigger::BreakerOpen, now,
            sim::strfmt("node %zu circuit breaker opened "
                        "(failure rate %.2f)",
                        node, e.health.failureRate(now)));
    }
}

bool
HealthRegistry::allows(std::size_t node, sim::Tick now)
{
    if (!config_.breakerEnabled)
        return true;
    Entry &e = entries_[node];
    switch (e.state) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open:
        if (sim::toSeconds(now - e.openedAt) >= config_.openSeconds) {
            transition(node, BreakerState::HalfOpen, now);
            return true;
        }
        return false;
      case BreakerState::HalfOpen:
        return true;
    }
    AGENTSIM_PANIC("unknown breaker state");
}

void
HealthRegistry::reportSuccess(std::size_t node, sim::Tick now)
{
    Entry &e = entries_[node];
    e.health.recordOutcome(now, false);
    if (!config_.breakerEnabled)
        return;
    if (e.state == BreakerState::HalfOpen &&
        ++e.probeSuccesses >= config_.halfOpenSuccesses) {
        transition(node, BreakerState::Closed, now);
    }
}

void
HealthRegistry::reportFailure(std::size_t node, sim::Tick now)
{
    Entry &e = entries_[node];
    e.health.recordOutcome(now, true);
    if (!config_.breakerEnabled)
        return;
    switch (e.state) {
      case BreakerState::Closed:
        if (e.health.eventWeight(now) >= config_.minEventsToOpen &&
            e.health.failureRate(now) >=
                config_.failureRateOpenThreshold) {
            transition(node, BreakerState::Open, now);
        }
        break;
      case BreakerState::HalfOpen:
        // A failed probe re-opens for a fresh cool-down.
        transition(node, BreakerState::Open, now);
        break;
      case BreakerState::Open:
        break; // stray in-flight failure; already open
    }
}

void
HealthRegistry::recordQueueDepth(std::size_t node, sim::Tick now,
                                 double depth)
{
    entries_[node].health.recordQueueDepth(now, depth);
}

void
HealthRegistry::markProvisioned(std::size_t node, sim::Tick now)
{
    Entry &e = entries_[node];
    e.health.reset();
    e.probeSuccesses = 0;
    if (config_.breakerEnabled &&
        e.state != BreakerState::HalfOpen) {
        // Bypass transition()'s Open bookkeeping: this is a fresh
        // node earning trust, not a sick one cooling down.
        e.state = BreakerState::HalfOpen;
        AGENTSIM_INFORM("node %zu provisioned: breaker half-open",
                        node);
        if (trace_ != nullptr) {
            trace_->instant(telemetry::TracePid::kResilience,
                            static_cast<std::uint64_t>(node),
                            "breaker_half_open", "resilience", now);
        }
    }
}

BreakerState
HealthRegistry::state(std::size_t node) const
{
    return entries_[node].state;
}

const NodeHealth &
HealthRegistry::health(std::size_t node) const
{
    return entries_[node].health;
}

void
HealthRegistry::exportMetrics(telemetry::MetricsRegistry &registry,
                              sim::Tick now) const
{
    registry
        .counter("agentsim_resilience_breaker_opens_total",
                 "Circuit-breaker Closed/HalfOpen -> Open transitions")
        .set(static_cast<double>(opens_));
    registry
        .counter("agentsim_resilience_breaker_closes_total",
                 "Circuit-breaker HalfOpen -> Closed transitions")
        .set(static_cast<double>(closes_));
    registry
        .counter("agentsim_resilience_breaker_fail_open_picks_total",
                 "Router picks that bypassed all-denying breakers")
        .set(static_cast<double>(failOpenPicks_));
    double open_now = 0;
    for (const auto &e : entries_) {
        if (e.state != BreakerState::Closed)
            open_now += 1;
    }
    registry
        .gauge("agentsim_resilience_breakers_not_closed",
               "Nodes whose breaker is currently Open or HalfOpen")
        .set(now, open_now);
}

} // namespace agentsim::core
