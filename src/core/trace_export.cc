#include "core/trace_export.hh"

#include <cstdio>

#include "sim/strfmt.hh"

namespace agentsim::core
{

namespace
{

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
toChromeTrace(const agents::AgentResult &result,
              const std::string &process_name)
{
    std::string out = "{\"traceEvents\":[\n";
    out += sim::strfmt("{\"name\":\"process_name\",\"ph\":\"M\","
                       "\"pid\":1,\"args\":{\"name\":\"%s\"}}",
                       jsonEscape(process_name).c_str());
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":1,\"args\":{\"name\":\"LLM inference\"}}";
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":2,\"args\":{\"name\":\"Tool execution\"}}";

    for (const auto &span : result.timeline) {
        const int tid =
            span.kind == agents::Span::Kind::Llm ? 1 : 2;
        const char *cat =
            span.kind == agents::Span::Kind::Llm ? "llm" : "tool";
        out += sim::strfmt(
            ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%d}",
            jsonEscape(span.label).c_str(), cat,
            static_cast<long long>(span.start),
            static_cast<long long>(span.end - span.start), tid);
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const agents::AgentResult &result,
                 const std::string &process_name)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string text = toChromeTrace(result, process_name);
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
}

} // namespace agentsim::core
