#include "core/trace_export.hh"

#include <cstdio>

#include "sim/strfmt.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::core
{

std::string
toChromeTrace(const agents::AgentResult &result,
              const std::string &process_name)
{
    // One shared escaper for every JSON emitter: tool observations can
    // carry tabs, carriage returns and other control characters, all
    // of which must become \uXXXX (or a short escape) to stay valid.
    using telemetry::jsonEscape;

    std::string out = "{\"traceEvents\":[\n";
    out += sim::strfmt("{\"name\":\"process_name\",\"ph\":\"M\","
                       "\"pid\":1,\"args\":{\"name\":\"%s\"}}",
                       jsonEscape(process_name).c_str());
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":1,\"args\":{\"name\":\"LLM inference\"}}";
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":2,\"args\":{\"name\":\"Tool execution\"}}";

    for (const auto &span : result.timeline) {
        const int tid =
            span.kind == agents::Span::Kind::Llm ? 1 : 2;
        const char *cat =
            span.kind == agents::Span::Kind::Llm ? "llm" : "tool";
        out += sim::strfmt(
            ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%d}",
            jsonEscape(span.label).c_str(), cat,
            static_cast<long long>(span.start),
            static_cast<long long>(span.end - span.start), tid);
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const agents::AgentResult &result,
                 const std::string &process_name)
{
    return telemetry::writeArtifact(path,
                                    toChromeTrace(result,
                                                  process_name),
                                    "Chrome trace");
}

} // namespace agentsim::core
