/**
 * @file
 * The agent serving system of paper Fig 13: an open-loop Poisson
 * request driver feeding asynchronous workers which run agent
 * workflows (or single-turn chatbot requests) against one shared
 * continuous-batching LLM engine and a shared tool belt.
 */

#ifndef AGENTSIM_CORE_SERVING_SYSTEM_HH
#define AGENTSIM_CORE_SERVING_SYSTEM_HH

#include "agents/workflows.hh"
#include "serving/engine.hh"
#include "stats/summary.hh"
#include "telemetry/session.hh"
#include "workload/benchmark.hh"

namespace agentsim::core
{

/** Serving-experiment configuration. */
struct ServeConfig
{
    /** Serve single-turn ShareGPT requests instead of an agent. */
    bool chatbot = false;
    /**
     * With chatbot: serve multi-turn conversation *sessions*. Each
     * request is a session; successive turns extend the same context
     * (keytakeaway #8's cross-query prefix persistence).
     */
    bool multiTurn = false;

    agents::AgentKind agent = agents::AgentKind::ReAct;
    workload::Benchmark bench = workload::Benchmark::HotpotQA;
    agents::AgentConfig agentConfig;
    serving::EngineConfig engineConfig;

    /** Offered load (Poisson arrivals). Ignored in closed-loop mode. */
    double qps = 1.0;
    /**
     * Closed-loop mode: issue each request only after the previous
     * one completes (the "sequential execution" comparison, §IV-C).
     */
    bool closedLoop = false;

    int numRequests = 100;
    std::uint64_t seed = 1;

    /**
     * Optional telemetry collection: when set, the run attaches the
     * session's trace sink to the engine and every agent rollout,
     * exports end-of-run engine metrics and request-latency
     * histograms into the registry, and copies the engine's
     * per-iteration sample series out before the engine is torn down.
     * The session must outlive the call.
     */
    telemetry::SessionTelemetry *telemetry = nullptr;

    /**
     * Optional online SLO tracker: when set it is attached to the
     * engine for the run (TTFT/TBT/E2E observations, burn-rate
     * alerts) and its families are exported into the telemetry
     * registry at the end. Must outlive the call.
     */
    telemetry::SloTracker *slo = nullptr;

    /**
     * Optional causal span collector. Defaults to the session's
     * collector when `telemetry` is set. Every request then gets a
     * span tree (engine phases, agent iterations, tool calls) that
     * collapses to a critical-path blame vector on completion; blame
     * aggregates and tail exemplars are exported with the telemetry
     * (core/bottleneck_report.hh). Must outlive the call.
     */
    telemetry::SpanCollector *spans = nullptr;

    /**
     * Optional flight recorder: trace events and span completions
     * tee into its retroactive rings and SLO burn alerts (when `slo`
     * is also set) dump incident bundles. Must outlive the call.
     */
    telemetry::FlightRecorder *recorder = nullptr;
    /**
     * Optional windowed time-series store fed by a read-only sampler
     * coroutine at timeseriesPeriodSeconds cadence. Pure observer.
     * Must outlive the call.
     */
    telemetry::TimeSeriesStore *timeseries = nullptr;
    double timeseriesPeriodSeconds = 0.5;
};

/** Serving-experiment measurements. */
struct ServeResult
{
    stats::SampleSet e2eSeconds;
    /** Per-turn generation latencies (multi-turn mode only). */
    stats::SampleSet turnSeconds;
    /** Time-to-first-token per LLM request (chatbot modes). */
    stats::SampleSet ttftSeconds;
    int completed = 0;
    int solved = 0;
    /** First submission to last completion, seconds. */
    double makespanSeconds = 0.0;

    serving::EngineStats engineStats;
    kv::CacheStats cacheStats;
    double cacheHitRate = 0.0;
    /** Time-average / peak KV bytes over the run. */
    double kvAvgBytes = 0.0;
    double kvMaxBytes = 0.0;
    /** Node GPU energy over the run, Wh. */
    double energyWh = 0.0;

    /**
     * Attributed cost summed over every request the clients saw
     * (agent rollouts or chat calls). Reconciles with engineStats
     * busy seconds / joules — the ledger conservation property.
     */
    serving::CostLedger totalCost;

    /** Simulator self-timing (host wall clock, see sim::Simulation). */
    double simWallSeconds = 0.0;
    double simEventsProcessed = 0.0;
    double simEventsPerSecond = 0.0;

    double
    throughputQps() const
    {
        return makespanSeconds > 0 ? completed / makespanSeconds : 0.0;
    }

    double p50() const { return e2eSeconds.percentile(50.0); }
    double p95() const { return e2eSeconds.percentile(95.0); }
};

/** Run one serving experiment. */
ServeResult runServing(const ServeConfig &config);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_SERVING_SYSTEM_HH
