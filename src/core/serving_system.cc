#include "core/serving_system.hh"

#include <memory>
#include <optional>

#include "agents/accuracy.hh"
#include "core/bottleneck_report.hh"
#include "sim/logging.hh"
#include "telemetry/sim_metrics.hh"
#include "workload/token_stream.hh"
#include "workload/toolset_factory.hh"

namespace agentsim::core
{

namespace
{

/** Shared mutable state the workers report into. */
struct ServeState
{
    ServeResult result;
    sim::Tick firstSubmit = -1;
    sim::Tick lastFinish = 0;
    /** Span collector (nullptr: spans off) and the workflow label
     *  every request of this run aggregates under. */
    telemetry::SpanCollector *spans = nullptr;
    std::string workflowLabel;
    /** Workload drained; periodic observers exit at next wake. */
    bool stopped = false;
};

void
noteCompletion(ServeState &state, sim::Tick submit, sim::Tick finish,
               bool solved)
{
    if (state.firstSubmit < 0)
        state.firstSubmit = submit;
    state.lastFinish = std::max(state.lastFinish, finish);
    state.result.e2eSeconds.add(sim::toSeconds(finish - submit));
    ++state.result.completed;
    state.result.solved += solved ? 1 : 0;
}

/** One agent request, Fig 13 worker-style. */
sim::Task<void>
agentWorker(const ServeConfig &config, sim::Simulation &sim,
            serving::LlmEngine &engine, tools::ToolSet &tools,
            const agents::AgentConfig &agent_cfg, std::uint64_t index,
            ServeState &state)
{
    workload::TaskGenerator gen(config.bench, config.seed);
    agents::AgentContext ctx;
    ctx.sim = &sim;
    ctx.engine = &engine;
    ctx.tools = &tools;
    ctx.task = gen.sample(index);
    ctx.config = agent_cfg;
    ctx.kind = config.agent;
    ctx.seed = config.seed;
    if (config.telemetry != nullptr) {
        ctx.traceSink = &config.telemetry->trace;
        ctx.traceTid = index + 1;
        ctx.traceSink->threadName(
            telemetry::TracePid::kAgents, ctx.traceTid,
            sim::strfmt("%s #%llu",
                        std::string(agents::agentName(config.agent))
                            .c_str(),
                        static_cast<unsigned long long>(index)));
    }

    auto agent = agents::makeAgent(config.agent);
    const sim::Tick submit = sim.now();
    telemetry::SpanRef root;
    if (state.spans != nullptr) {
        root = state.spans->beginRequest(index, state.workflowLabel,
                                         submit);
        ctx.spans = state.spans;
        ctx.spanParent = root;
    }
    agents::AgentResult result = co_await agent->run(ctx);
    if (state.spans != nullptr)
        state.spans->finishRequest(root, sim.now());
    state.result.totalCost += result.cost;
    noteCompletion(state, submit, sim.now(), result.solved);
}

/** One ShareGPT chatbot request: a single LLM inference. */
sim::Task<void>
chatWorker(const ServeConfig &config, sim::Simulation &sim,
           serving::LlmEngine &engine, std::uint64_t index,
           ServeState &state)
{
    const workload::ShareGptSampler sampler(config.seed);
    const workload::ChatRequest chat = sampler.sample(index);

    // A short shared system preamble plus a unique conversation: real
    // chatbot traffic has little cross-request overlap (paper: prefix
    // caching only buys ~1.03x there).
    constexpr std::int64_t system_tokens = 40;
    serving::GenRequest req;
    req.prompt = workload::makeTokens(
        workload::streamId(config.seed, "chat.system"), system_tokens);
    const auto convo = workload::makeTokens(
        workload::substream(workload::streamId(config.seed,
                                               "chat.convo"),
                            index),
        std::max<std::int64_t>(1, chat.promptTokens - system_tokens));
    req.prompt.insert(req.prompt.end(), convo.begin(), convo.end());
    req.maxNewTokens = chat.outputTokens;
    req.sessionId = sim::hashCombine(config.seed, index);

    const sim::Tick submit = sim.now();
    telemetry::SpanRef root;
    if (state.spans != nullptr) {
        root = state.spans->beginRequest(index, state.workflowLabel,
                                         submit);
        req.parentSpan = root;
    }
    serving::GenResult r = co_await engine.generate(std::move(req));
    if (state.spans != nullptr)
        state.spans->finishRequest(root, sim.now());
    state.result.ttftSeconds.add(r.ttftSeconds);
    state.result.totalCost += r.ledger;
    noteCompletion(state, submit, sim.now(), !r.failed);
}

/** One multi-turn conversation session (keytakeaway #8). */
sim::Task<void>
sessionWorker(const ServeConfig &config, sim::Simulation &sim,
              serving::LlmEngine &engine, std::uint64_t index,
              ServeState &state)
{
    const workload::ChatSessionSampler sessions(config.seed);
    sim::Rng rng(config.seed, "chat.think", index);
    const int turns = sessions.turnCount(index);

    // The conversation context: system preamble, then alternating
    // user messages and assistant replies.
    constexpr std::int64_t system_tokens = 40;
    std::vector<kv::TokenId> history = workload::makeTokens(
        workload::streamId(config.seed, "chat.system"), system_tokens);

    const sim::Tick session_start = sim.now();
    telemetry::SpanRef root;
    if (state.spans != nullptr) {
        root = state.spans->beginRequest(index, state.workflowLabel,
                                         session_start);
    }
    for (int t = 0; t < turns; ++t) {
        if (t > 0) {
            co_await sim::delaySec(sim,
                                   sessions.thinkTimeSeconds(rng));
        }
        const workload::ChatTurn turn = sessions.turn(index, t);
        const auto user = workload::makeTokens(
            workload::substream(
                workload::substream(workload::streamId(
                                        config.seed, "chat.user"),
                                    index),
                static_cast<std::uint64_t>(t)),
            turn.userTokens);
        history.insert(history.end(), user.begin(), user.end());

        serving::GenRequest req;
        req.prompt = history;
        req.maxNewTokens = turn.outputTokens;
        req.sessionId = sim::hashCombine(config.seed, ~index);
        const sim::Tick turn_start = sim.now();
        telemetry::SpanRef turn_span;
        if (state.spans != nullptr) {
            turn_span = state.spans->child(
                root, telemetry::SpanKind::Iteration, "chat.turn",
                turn_start);
            req.parentSpan = turn_span;
        }
        serving::GenResult r =
            co_await engine.generate(std::move(req));
        if (state.spans != nullptr)
            state.spans->end(turn_span, sim.now());
        state.result.turnSeconds.add(
            sim::toSeconds(sim.now() - turn_start));
        state.result.ttftSeconds.add(r.ttftSeconds);
        state.result.totalCost += r.ledger;
        history.insert(history.end(), r.tokens.begin(),
                       r.tokens.end());
    }
    if (state.spans != nullptr)
        state.spans->finishRequest(root, sim.now());
    noteCompletion(state, session_start, sim.now(), true);
}

/** The open-/closed-loop driver. */
sim::Task<void>
driver(const ServeConfig &config, sim::Simulation &sim,
       serving::LlmEngine &engine, tools::ToolSet *tools,
       const agents::AgentConfig &agent_cfg, ServeState &state)
{
    sim::Rng arrivals(config.seed, "arrivals", 0);
    std::vector<sim::Task<void>> workers;
    workers.reserve(static_cast<std::size_t>(config.numRequests));

    for (int i = 0; i < config.numRequests; ++i) {
        if (i > 0 && !config.closedLoop) {
            co_await sim::delaySec(
                sim, arrivals.exponential(1.0 / config.qps));
        }
        const auto index = static_cast<std::uint64_t>(i);
        if (config.chatbot && config.multiTurn) {
            workers.push_back(
                sessionWorker(config, sim, engine, index, state));
        } else if (config.chatbot) {
            workers.push_back(
                chatWorker(config, sim, engine, index, state));
        } else {
            workers.push_back(agentWorker(config, sim, engine, *tools,
                                          agent_cfg, index, state));
        }
        if (config.closedLoop)
            co_await workers.back();
    }
    co_await sim::allOf(std::move(workers));
    state.stopped = true;
}

/**
 * Read-only time-series sampler for the single-engine path: the
 * serving twin of the cluster's timeseriesSampler. Pure observer —
 * consumes no RNG, mutates nothing; not spawned without a store.
 */
sim::Task<void>
timeseriesSampler(const ServeConfig &config, sim::Simulation &sim,
                  serving::LlmEngine &engine, ServeState &state)
{
    telemetry::TimeSeriesStore &ts = *config.timeseries;
    for (;;) {
        co_await sim::delaySec(sim, config.timeseriesPeriodSeconds);
        const sim::Tick now = sim.now();
        ts.record("engine_queue_depth", now,
                  static_cast<double>(engine.queueDepth()));
        ts.record("engine_running", now,
                  static_cast<double>(engine.runningCount()));
        const auto &blocks = engine.blockManager();
        if (blocks.totalBlocks() > 0) {
            ts.record("engine_kv_util", now,
                      static_cast<double>(blocks.blocksInUse()) /
                          static_cast<double>(blocks.totalBlocks()));
        }
        ts.record("requests_completed", now,
                  static_cast<double>(state.result.completed));
        if (config.slo != nullptr) {
            ts.record("slo_burn_e2e", now,
                      config.slo->windowBurnRate(
                          telemetry::SloMetric::E2e, now));
        }
        if (config.telemetry != nullptr)
            ts.sample(config.telemetry->registry, now);
        if (state.stopped)
            co_return;
    }
}

} // namespace

ServeResult
runServing(const ServeConfig &config)
{
    AGENTSIM_ASSERT(config.numRequests > 0, "serving without requests");
    AGENTSIM_ASSERT(config.chatbot || config.closedLoop ||
                        config.qps > 0,
                    "open-loop serving needs positive QPS");
    if (!config.chatbot &&
        !agents::agentSupports(config.agent, config.bench)) {
        AGENTSIM_FATAL("unsupported agent/benchmark pair in serving");
    }

    sim::Simulation sim;
    serving::LlmEngine engine(sim, config.engineConfig);
    if (config.telemetry != nullptr) {
        engine.attachTrace(&config.telemetry->trace);
        config.telemetry->trace.processName(
            telemetry::TracePid::kAgents, "agents");
    }
    if (config.slo != nullptr)
        engine.attachSlo(config.slo);
    telemetry::SpanCollector *spans =
        config.spans != nullptr
            ? config.spans
            : (config.telemetry != nullptr ? &config.telemetry->spans
                                           : nullptr);
    engine.attachSpans(spans);
    // Flight-recorder tees; attach calls run even with a null
    // recorder so reused sinks detach between sweep points.
    if (config.telemetry != nullptr)
        config.telemetry->trace.attachRecorder(config.recorder);
    if (spans != nullptr)
        spans->attachRecorder(config.recorder);
    if (config.slo != nullptr)
        config.slo->attachRecorder(config.recorder);
    if (config.recorder != nullptr)
        config.recorder->attachTimeSeries(config.timeseries);
    std::unique_ptr<tools::ToolSet> tools;
    if (!config.chatbot) {
        tools = workload::makeToolSet(config.bench, sim, engine,
                                      config.seed);
    }

    agents::AgentConfig agent_cfg = config.agentConfig;
    agent_cfg.modelQuality =
        agents::modelQuality(config.engineConfig.model.name);

    ServeState state;
    state.spans = spans;
    if (config.chatbot) {
        state.workflowLabel =
            config.multiTurn ? "ShareGPT/session" : "ShareGPT/chat";
    } else {
        state.workflowLabel =
            std::string(workload::benchmarkName(config.bench)) + "/" +
            std::string(agents::agentName(config.agent));
    }
    auto drive = driver(config, sim, engine, tools.get(), agent_cfg,
                        state);
    std::optional<sim::Task<void>> sampler;
    if (config.timeseries != nullptr)
        sampler.emplace(timeseriesSampler(config, sim, engine, state));
    sim.run();
    AGENTSIM_ASSERT(drive.done(), "serving driver did not finish");
    AGENTSIM_ASSERT(state.result.completed == config.numRequests,
                    "serving lost requests: %d of %d",
                    state.result.completed, config.numRequests);

    ServeResult out = std::move(state.result);
    out.makespanSeconds =
        sim::toSeconds(state.lastFinish -
                       std::max<sim::Tick>(0, state.firstSubmit));
    out.engineStats = engine.stats();
    out.cacheStats = engine.cacheStats();
    out.cacheHitRate = engine.cacheStats().hitRate();
    const sim::Tick end = sim.now();
    const double ticks = static_cast<double>(end);
    const double block_bytes = static_cast<double>(engine.blockBytes());
    out.kvAvgBytes =
        ticks > 0 ? engine.kvUsageGauge().integral(end) / ticks *
                        block_bytes
                  : 0.0;
    out.kvMaxBytes = engine.kvUsageGauge().max() * block_bytes;
    out.energyWh = engine.energyJoules(end) / 3600.0;
    out.simWallSeconds = sim.wallSeconds();
    out.simEventsProcessed =
        static_cast<double>(sim.processedEvents());
    out.simEventsPerSecond = sim.eventsPerSecond();

    if (config.telemetry != nullptr) {
        telemetry::SessionTelemetry &t = *config.telemetry;
        engine.exportMetrics(t.registry);
        telemetry::exportSimMetrics(t.registry, sim);
        if (config.slo != nullptr)
            config.slo->exportMetrics(t.registry, end);
        if (!out.e2eSeconds.empty()) {
            auto &h = t.registry.histogram(
                "agentsim_request_e2e_seconds",
                "End-to-end request latency",
                0.0, std::max(1.0, out.e2eSeconds.max() * 1.001), 20);
            for (double v : out.e2eSeconds.values())
                h.observe(v);
        }
        if (!out.ttftSeconds.empty()) {
            auto &h = t.registry.histogram(
                "agentsim_ttft_seconds", "Time to first token",
                0.0, std::max(1.0, out.ttftSeconds.max() * 1.001), 20);
            for (double v : out.ttftSeconds.values())
                h.observe(v);
        }
        if (spans != nullptr && !spans->empty()) {
            exportBlameMetrics(*spans, t.registry, end);
            emitSpanExemplars(*spans, t.trace);
        }
        if (config.recorder != nullptr)
            config.recorder->exportMetrics(t.registry);
        t.registry
            .gauge("agentsim_trace_dropped_events",
                   "Trace events dropped by the sink's capacity cap")
            .set(end, static_cast<double>(t.trace.droppedEvents()));
        t.registry.snapshot(end);
        t.engineSamples = engine.sampler().samples();
    }
    return out;
}

} // namespace agentsim::core
