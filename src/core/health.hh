/**
 * @file
 * Per-node health tracking and circuit breakers for health-aware
 * routing.
 *
 * Every routed request reports its outcome back to a HealthRegistry;
 * each node keeps time-decayed EWMAs of failures (sheds, timeouts,
 * node-failure errors) and queue depth, and a per-node circuit
 * breaker turns a persistently failing node into a no-route zone:
 *
 *   Closed ──(failure EWMA over threshold)──▶ Open
 *   Open ──(cool-down elapsed)──▶ HalfOpen (probe admissions)
 *   HalfOpen ──(probes succeed)──▶ Closed / ──(probe fails)──▶ Open
 *
 * The router consults allows() before dispatch, so retries stop
 * hammering sick, crashed-and-cold, or draining nodes. Routing fails
 * open: when every accepting node is breaker-denied the router falls
 * back to ignoring the breakers rather than stalling the client.
 */

#ifndef AGENTSIM_CORE_HEALTH_HH
#define AGENTSIM_CORE_HEALTH_HH

#include <cstdint>
#include <vector>

#include "sim/simulation.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::core
{

/** Circuit-breaker state of one node. */
enum class BreakerState
{
    Closed,
    Open,
    HalfOpen,
};

std::string_view breakerStateName(BreakerState state);

/** Health/breaker tuning. Defaults are deliberately conservative:
 *  a breaker opens only on a sustained failure majority. */
struct HealthConfig
{
    /** Master switch; off restores pure online()-based routing. */
    bool breakerEnabled = true;
    /** Time constant of the exponential outcome/queue decay, s. */
    double ewmaTauSeconds = 10.0;
    /** Decayed failure fraction at which a Closed breaker opens. */
    double failureRateOpenThreshold = 0.6;
    /** Minimum decayed event weight before opening (debounce). */
    double minEventsToOpen = 4.0;
    /** Cool-down before an Open breaker half-opens, seconds. */
    double openSeconds = 4.0;
    /** Successful probes needed to close a HalfOpen breaker. */
    int halfOpenSuccesses = 2;
};

/**
 * Time-decayed outcome and queue-depth EWMAs of one node. Irregular
 * samples: every update first decays the accumulated weight by
 * exp(-dt/tau), so the failure rate is dominated by the last ~tau
 * seconds of traffic.
 */
class NodeHealth
{
  public:
    explicit NodeHealth(double tau_seconds) : tau_(tau_seconds) {}

    void recordOutcome(sim::Tick now, bool failure);
    void recordQueueDepth(sim::Tick now, double depth);

    /** Decayed failure fraction in [0,1] (0 when no recent events). */
    double failureRate(sim::Tick now) const;
    /** Decayed number of recent outcome events. */
    double eventWeight(sim::Tick now) const;
    /** Decayed queue-depth average (last sampled window). */
    double queueDepthEwma() const { return queueEwma_; }

    void reset();

  private:
    double decayFactor(sim::Tick now, sim::Tick since) const;

    double tau_ = 10.0;
    double failures_ = 0.0;
    double total_ = 0.0;
    sim::Tick lastOutcome_ = 0;
    double queueEwma_ = 0.0;
    sim::Tick lastQueue_ = -1;
};

/**
 * Health + breaker state for a fleet of nodes. Single-threaded, owned
 * by runCluster; the router reads, the workers write.
 */
class HealthRegistry
{
  public:
    HealthRegistry(const HealthConfig &config, std::size_t num_nodes);

    /** Emit breaker transitions as trace instants (kResilience). */
    void attachTrace(telemetry::TraceSink *sink) { trace_ = sink; }

    /** Every breaker *open* becomes an incident trigger (nullptr
     *  detaches). */
    void attachRecorder(telemetry::FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /**
     * May the router send traffic to @p node now? Transitions an Open
     * breaker to HalfOpen once its cool-down elapses (every HalfOpen
     * admission is a probe). Always true when breakers are disabled.
     */
    bool allows(std::size_t node, sim::Tick now);

    /** Report a routed request's outcome on @p node. */
    void reportSuccess(std::size_t node, sim::Tick now);
    void reportFailure(std::size_t node, sim::Tick now);

    /** Periodic queue-depth sample (monitor coroutine). */
    void recordQueueDepth(std::size_t node, sim::Tick now, double depth);

    /**
     * A freshly provisioned node (autoscaler scale-out) enters the
     * fleet: its history is wiped and — when breakers are enabled —
     * it starts HalfOpen, earning trust through probe admissions
     * rather than receiving a full traffic share cold.
     */
    void markProvisioned(std::size_t node, sim::Tick now);

    BreakerState state(std::size_t node) const;
    const NodeHealth &health(std::size_t node) const;

    std::int64_t opens() const { return opens_; }
    std::int64_t closes() const { return closes_; }
    /** Router picks that ignored the breakers (every accepting node
     *  was denied; failing open avoids livelock). */
    std::int64_t failOpenPicks() const { return failOpenPicks_; }
    void noteFailOpenPick() { ++failOpenPicks_; }

    void exportMetrics(telemetry::MetricsRegistry &registry,
                       sim::Tick now) const;

  private:
    struct Entry
    {
        NodeHealth health;
        BreakerState state = BreakerState::Closed;
        sim::Tick openedAt = 0;
        int probeSuccesses = 0;

        explicit Entry(double tau) : health(tau) {}
    };

    void transition(std::size_t node, BreakerState to, sim::Tick now);

    HealthConfig config_;
    std::vector<Entry> entries_;
    telemetry::TraceSink *trace_ = nullptr;
    telemetry::FlightRecorder *recorder_ = nullptr;
    std::int64_t opens_ = 0;
    std::int64_t closes_ = 0;
    std::int64_t failOpenPicks_ = 0;
};

} // namespace agentsim::core

#endif // AGENTSIM_CORE_HEALTH_HH
