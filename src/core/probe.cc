#include "core/probe.hh"

#include "agents/accuracy.hh"
#include "sim/logging.hh"
#include "workload/toolset_factory.hh"

namespace agentsim::core
{

serving::EngineConfig
enginePreset8b()
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.enablePrefixCaching = true;
    return cfg;
}

serving::EngineConfig
enginePreset70b()
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_70b();
    cfg.node = llm::octoA100();
    cfg.enablePrefixCaching = true;
    return cfg;
}

namespace
{

/** Run one agent request to completion (helper coroutine). */
sim::Task<agents::AgentResult>
runOne(agents::Agent &agent, agents::AgentContext ctx)
{
    co_return co_await agent.run(ctx);
}

} // namespace

ProbeResult
runProbe(const ProbeConfig &config)
{
    AGENTSIM_ASSERT(config.numTasks > 0, "probe without tasks");
    if (!agents::agentSupports(config.agent, config.bench)) {
        AGENTSIM_FATAL("the paper does not evaluate %s on %s",
                       std::string(agents::agentName(config.agent))
                           .c_str(),
                       std::string(workload::benchmarkName(
                                       config.bench))
                           .c_str());
    }

    sim::Simulation sim;
    serving::LlmEngine engine(sim, config.engineConfig);
    if (config.telemetry != nullptr) {
        engine.attachTrace(&config.telemetry->trace);
        config.telemetry->trace.processName(
            telemetry::TracePid::kAgents, "agents");
    }
    telemetry::SpanCollector *spans =
        config.spans != nullptr
            ? config.spans
            : (config.telemetry != nullptr ? &config.telemetry->spans
                                           : nullptr);
    engine.attachSpans(spans);
    const std::string workflow_label =
        std::string(workload::benchmarkName(config.bench)) + "/" +
        std::string(agents::agentName(config.agent));
    auto tools = workload::makeToolSet(config.bench, sim, engine,
                                       config.seed);
    workload::TaskGenerator gen(config.bench, config.seed);
    auto agent = agents::makeAgent(config.agent);

    agents::AgentConfig agent_cfg = config.agentConfig;
    agent_cfg.modelQuality =
        agents::modelQuality(config.engineConfig.model.name);

    ProbeResult out;
    out.config = config;
    out.requests.reserve(static_cast<std::size_t>(config.numTasks));

    const double block_bytes =
        static_cast<double>(engine.blockBytes());

    for (int i = 0; i < config.numTasks; ++i) {
        agents::AgentContext ctx;
        ctx.sim = &sim;
        ctx.engine = &engine;
        ctx.tools = tools.get();
        ctx.task = gen.sample(static_cast<std::uint64_t>(i));
        ctx.config = agent_cfg;
        ctx.kind = config.agent;
        ctx.seed = config.seed;
        if (config.telemetry != nullptr) {
            ctx.traceSink = &config.telemetry->trace;
            ctx.traceTid = static_cast<std::uint64_t>(i) + 1;
            ctx.traceSink->threadName(
                telemetry::TracePid::kAgents, ctx.traceTid,
                sim::strfmt("%s task %d",
                            std::string(agents::agentName(
                                            config.agent))
                                .c_str(),
                            i));
        }

        telemetry::SpanRef root;
        if (spans != nullptr) {
            root = spans->beginRequest(static_cast<std::uint64_t>(i),
                                       workflow_label, sim.now());
            ctx.spans = spans;
            ctx.spanParent = root;
        }

        const sim::Tick start = sim.now();
        const double joules0 = engine.energyJoules(start);
        const auto stats0 = engine.stats();
        const double kv_integral0 =
            engine.kvUsageGauge().integral(start);
        engine.kvUsageGaugeMut().mark();
        const double flops0 = engine.stats().totalFlops;

        auto task = runOne(*agent, ctx);
        sim.run();
        AGENTSIM_ASSERT(task.done(), "probe request did not finish");

        const sim::Tick end = sim.now();
        RequestProbe probe;
        probe.result = task.result();
        probe.energyWh =
            (engine.energyJoules(end) - joules0) / 3600.0;
        probe.gpuBusySeconds =
            engine.stats().busySeconds - stats0.busySeconds;
        probe.gpuPrefillSeconds =
            engine.stats().prefillSeconds - stats0.prefillSeconds;
        probe.gpuDecodeSeconds =
            engine.stats().decodeSeconds - stats0.decodeSeconds;
        probe.gpuCoreActiveSeconds =
            engine.stats().coreActiveSeconds -
            stats0.coreActiveSeconds;
        const double ticks = static_cast<double>(end - start);
        probe.kvAvgBytes =
            ticks > 0
                ? (engine.kvUsageGauge().integral(end) - kv_integral0) /
                      ticks * block_bytes
                : 0.0;
        probe.kvMaxBytes =
            engine.kvUsageGauge().maxSinceMark() * block_bytes;
        probe.flops = engine.stats().totalFlops - flops0;
        if (spans != nullptr)
            probe.blame = spans->finishRequest(root, end);
        out.requests.push_back(std::move(probe));

        if (config.telemetry != nullptr) {
            engine.exportMetrics(config.telemetry->registry);
            config.telemetry->registry.snapshot(end);
        }
    }
    if (config.telemetry != nullptr) {
        config.telemetry->engineSamples = engine.sampler().samples();
    }
    return out;
}

double
ProbeResult::accuracy() const
{
    if (requests.empty())
        return 0.0;
    double solved = 0.0;
    for (const auto &r : requests)
        solved += r.result.solved ? 1.0 : 0.0;
    return solved / static_cast<double>(requests.size());
}

stats::SampleSet
ProbeResult::e2eSeconds() const
{
    stats::SampleSet s;
    for (const auto &r : requests)
        s.add(r.result.e2eSeconds);
    return s;
}

double
ProbeResult::meanLlmCalls() const
{
    if (requests.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &r : requests)
        total += r.result.llmCalls;
    return total / static_cast<double>(requests.size());
}

double
ProbeResult::meanToolCalls() const
{
    if (requests.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &r : requests)
        total += r.result.toolCalls;
    return total / static_cast<double>(requests.size());
}

double
ProbeResult::meanEnergyWh() const
{
    if (requests.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &r : requests)
        total += r.energyWh;
    return total / static_cast<double>(requests.size());
}

double
ProbeResult::meanFlops() const
{
    if (requests.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &r : requests)
        total += r.flops;
    return total / static_cast<double>(requests.size());
}

serving::CostLedger
ProbeResult::totalCost() const
{
    serving::CostLedger sum;
    for (const auto &r : requests)
        sum += r.result.cost;
    return sum;
}

double
ProbeResult::meanGpuIdleFraction() const
{
    if (requests.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &r : requests) {
        if (r.result.e2eSeconds > 0) {
            total += 1.0 - r.gpuBusySeconds / r.result.e2eSeconds;
        }
    }
    return total / static_cast<double>(requests.size());
}

} // namespace agentsim::core
