/**
 * @file
 * Elastic cluster autoscaling with predictive admission control.
 *
 * A closed-loop capacity controller for core/cluster: instead of
 * serving every load level on a statically provisioned fleet
 * (over-paying at low load, shedding at peaks), the controller watches
 * three predictive signals and resizes the cluster between a floor and
 * a ceiling:
 *
 *  - the EWMA arrival rate (irregular-sample exponential decay, so the
 *    estimate tracks the last ~tau seconds of traffic) against the
 *    fleet's sustainable per-node service rate;
 *  - a streaming P² percentile of observed queue delay
 *    (stats/quantile) — the earliest user-visible symptom of
 *    under-provisioning;
 *  - the SLO burn rate from telemetry/slo — the error budget is
 *    already on fire, capacity is the remedy.
 *
 * Scale-out is not free: a new node pays a simulated warm-up (instance
 * boot plus model-weight load priced on the host->GPU link from
 * llm/hardware) before it takes traffic, and it enters routing with a
 * HalfOpen circuit breaker so it earns trust through probes. Scale-in
 * reuses the graceful-drain + live-KV-migration path (never the crash
 * path), so elasticity costs zero lost prefill seconds. Cooldowns and
 * a sustained-relief requirement (hysteresis) keep the controller from
 * flapping.
 *
 * The same module provides predictive admission control for the
 * router: when the projected queue delay on the chosen node exceeds a
 * request's deadline budget, the cluster rejects fast with a
 * retryable signal instead of letting the request time out inside the
 * queue. This complements EngineConfig::maxQueueDepth (a per-node
 * depth cap) and core/brownout (degrades quality): admission control
 * degrades *latency honestly* — the client learns immediately and can
 * back off, instead of burning its deadline in a doomed queue.
 *
 * See docs/OPERATIONS.md ("Autoscaler") for the operator's view of
 * every knob and metric.
 */

#ifndef AGENTSIM_CORE_AUTOSCALER_HH
#define AGENTSIM_CORE_AUTOSCALER_HH

#include <cstdint>
#include <string_view>

#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "sim/types.hh"
#include "stats/quantile.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::core
{

/** Autoscaler + admission-control tuning. Disabled by default. */
struct AutoscalerConfig
{
    bool enabled = false;

    /** Capacity floor, nodes (>= 1: a 0-node fleet cannot serve). */
    int minNodes = 1;
    /** Capacity ceiling, nodes (the pre-built standby pool size). */
    int maxNodes = 4;

    // --- Predictive scale-out signal -----------------------------
    /** Time constant of the arrival-rate EWMA, seconds. */
    double arrivalTauSeconds = 20.0;
    /**
     * Sustainable per-node service rate, requests/s, sized offline
     * (e.g. from bench/fig14_qps_sweep). Enables the capacity term:
     * scale out when predicted arrivals exceed targetUtilization x
     * nodeServiceQps x provisioned nodes. 0 disables the term; the
     * controller then reacts to queue delay and burn rate only.
     */
    double nodeServiceQps = 0.0;
    /** Fraction of provisioned capacity predicted demand may use
     *  before the capacity term signals pressure. */
    double targetUtilization = 0.75;
    /** Queue-delay quantile tracked by the P² estimator (0..1). */
    double queueDelayQuantile = 0.95;
    /** Observations the estimator needs before it may signal. */
    int minDelaySamples = 8;
    /** Scale out when the tracked delay percentile exceeds this, s. */
    double queueDelayHighSeconds = 8.0;
    /** Scale in only when the delay percentile is below this, s. */
    double queueDelayLowSeconds = 1.0;
    /** Scale out when any SLO burn rate reaches this multiple. */
    double burnHighThreshold = 1.5;
    /** Scale in only when the burn rate is below this multiple. */
    double burnLowThreshold = 0.75;

    // --- Hysteresis ----------------------------------------------
    /** Minimum time between consecutive scaling decisions, s. */
    double scaleOutCooldownSeconds = 10.0;
    /**
     * Scale in only after this long without *any* pressure signal
     * (and at least this long since the last scaling decision), s.
     */
    double scaleInCooldownSeconds = 45.0;
    /** Scale in only when predicted demand still fits in one fewer
     *  node at this utilization (must sit below targetUtilization,
     *  or the controller would flap). */
    double scaleInUtilization = 0.5;

    // --- Node warm-up --------------------------------------------
    /** Fixed instance boot time before weights start loading, s. */
    double nodeBootSeconds = 4.0;
    /**
     * Host->GPU bandwidth feeding the model-weight load, bytes/s per
     * GPU. 0 = use NodeSpec::hostOffloadBandwidth (PCIe).
     */
    double weightLoadBandwidth = 0.0;

    // --- Scale-in drain ------------------------------------------
    /** Drain window before leftovers live-migrate, seconds. */
    double drainDeadlineSeconds = 5.0;

    // --- Predictive admission control ----------------------------
    /** Master switch (only active while the autoscaler is enabled). */
    bool admissionControl = true;
    /**
     * Fraction of a request's remaining deadline the projected queue
     * delay may consume before reject-fast (the rest is reserved for
     * actual service time).
     */
    double admissionDeadlineFraction = 0.5;
    /** Projected-delay bound for deadline-less requests, seconds
     *  (0 = always admit them). */
    double admissionMaxDelaySeconds = 0.0;
};

/** What the controller wants done with the fleet. */
enum class ScaleDecision
{
    Hold,
    ScaleOut,
    ScaleIn,
};

std::string_view scaleDecisionName(ScaleDecision decision);

/**
 * Simulated node warm-up: instance boot plus loading the (tensor-
 * parallel sharded) model weights onto every GPU over the host link.
 * Shards load in parallel, so the transfer term is the per-GPU shard
 * over one link's bandwidth.
 */
double nodeWarmupSeconds(const AutoscalerConfig &config,
                         const llm::ModelSpec &model,
                         const llm::NodeSpec &node);

/**
 * The closed-loop capacity controller. The cluster feeds it arrivals
 * and observed queue delays as they happen; a periodic monitor calls
 * evaluate() with the current fleet state and SLO burn rate and acts
 * on the decision. Single-threaded, owned by runCluster — but free of
 * engine dependencies, so tests can drive the state machine directly.
 */
class AutoscalerController
{
  public:
    explicit AutoscalerController(const AutoscalerConfig &config);

    /** Emit decisions as trace instants (kResilience, tid = node
     *  count at decision time). */
    void attachTrace(telemetry::TraceSink *sink) { trace_ = sink; }

    /** Every scale-out (and scale flap) becomes an incident trigger
     *  (nullptr detaches). */
    void attachRecorder(telemetry::FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Feed one request arrival (EWMA rate estimator). */
    void recordArrival(sim::Tick now);

    /** Feed one observed queue delay (P² percentile estimator). */
    void recordQueueDelay(double seconds);

    /**
     * Evaluate the control loop: @p active serving nodes, @p warming
     * nodes still paying their boot cost (provisioned capacity the
     * controller must not double-order), and the current max SLO
     * @p burn_rate. A non-Hold return starts the decision's cooldown
     * and resets the delay estimator (each decision demands fresh
     * evidence); the caller is expected to act on it.
     */
    ScaleDecision evaluate(sim::Tick now, int active, int warming,
                           double burn_rate);

    /** A scaled-out node finished warm-up and entered routing. */
    void noteNodeReady(sim::Tick now);

    /** Predicted arrival rate: the EWMA decayed to @p now. */
    double predictedQps(sim::Tick now) const;

    /** Current queue-delay percentile estimate (0 before
     *  minDelaySamples observations). */
    double queueDelayPercentile() const;

    /** Why the last non-Hold decision fired ("capacity",
     *  "queue_delay", "burn", "idle"; empty before the first). */
    std::string_view lastReason() const { return reason_; }

    std::int64_t scaleOuts() const { return scaleOuts_; }
    std::int64_t scaleIns() const { return scaleIns_; }
    std::int64_t nodesReady() const { return nodesReady_; }

    /** Export agentsim_autoscale_* controller families. */
    void exportMetrics(telemetry::MetricsRegistry &registry,
                       sim::Tick now) const;

    const AutoscalerConfig &config() const { return config_; }

  private:
    double elapsedSeconds(sim::Tick now, sim::Tick since) const;
    void resetDelayEstimator();

    AutoscalerConfig config_;
    telemetry::TraceSink *trace_ = nullptr;
    telemetry::FlightRecorder *recorder_ = nullptr;

    /** EWMA of the instantaneous arrival rate, requests/s. */
    double arrivalRate_ = 0.0;
    sim::Tick lastArrival_ = -1;

    stats::P2Quantile delay_;
    std::int64_t delaySamples_ = 0;

    sim::Tick lastScaleOut_ = 0;
    sim::Tick lastScaleIn_ = 0;
    /** Last tick any pressure signal was observed. */
    sim::Tick lastPressure_ = 0;

    std::int64_t scaleOuts_ = 0;
    std::int64_t scaleIns_ = 0;
    std::int64_t nodesReady_ = 0;
    std::string_view reason_ = "";
};

/**
 * Predictive admission control: Little's-law projection of the queue
 * delay a request would suffer on its routed node, gated against the
 * request's deadline budget. The completion-rate estimate is learned
 * online (EWMA over completions) unless nodeServiceQps pins it.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(const AutoscalerConfig &config);

    /** Feed one request completion (service-rate estimator). */
    void recordCompletion(sim::Tick now);

    /**
     * Projected queue delay for a request joining a node whose
     * waiting queue holds @p queue_depth requests, with @p active
     * nodes sharing the cluster's completion rate. 0 while the rate
     * is still unknown (cold start admits everything).
     */
    double projectedDelaySeconds(std::size_t queue_depth, int active,
                                 sim::Tick now) const;

    /**
     * Admit or reject-fast. @p deadline_budget_seconds is the
     * request's *remaining* deadline (<= 0: deadline-less, gated by
     * admissionMaxDelaySeconds instead, 0 meaning always admit).
     */
    bool admit(std::size_t queue_depth, int active,
               double deadline_budget_seconds, sim::Tick now);

    std::int64_t decisions() const { return decisions_; }
    std::int64_t rejects() const { return rejects_; }

  private:
    AutoscalerConfig config_;
    /** EWMA of the cluster-wide completion rate, requests/s. */
    double completionRate_ = 0.0;
    sim::Tick lastCompletion_ = -1;
    std::int64_t decisions_ = 0;
    std::int64_t rejects_ = 0;
};

} // namespace agentsim::core

#endif // AGENTSIM_CORE_AUTOSCALER_HH
