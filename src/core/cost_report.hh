/**
 * @file
 * Cost-report rollup: attributed per-request ledgers (serving/cost.hh)
 * aggregated by label — one row per agent step, per rollout, or per
 * (agent, benchmark) pair — rendered as a console table and exported
 * as agentsim_cost_* metric families.
 *
 * Because the underlying ledgers are attributed (each engine step's
 * time split across its participants), rows are additive: the table's
 * TOTAL row reconciles with the engine's aggregate busy time and
 * energy, so "ReAct on HotpotQA costs 3.1 GPU-s and 0.4 Wh per solved
 * task" is a statement about real, non-overlapping resources.
 */

#ifndef AGENTSIM_CORE_COST_REPORT_HH
#define AGENTSIM_CORE_COST_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/table.hh"
#include "serving/cost.hh"
#include "sim/types.hh"
#include "telemetry/registry.hh"

namespace agentsim::core
{

/** Accumulates ledgers under string labels (insertion-ordered). */
class CostReport
{
  public:
    /** Fold one ledger into the row named @p label. */
    void add(const std::string &label,
             const serving::CostLedger &ledger);

    /** Mark @p count extra requests folded into @p label's row
     *  (add() counts one by default). */
    void add(const std::string &label,
             const serving::CostLedger &ledger, std::int64_t count);

    /** Sum over all rows. */
    serving::CostLedger total() const;

    /** Number of labelled rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Ledger of one labelled row (panics on unknown label). */
    const serving::CostLedger &ledger(const std::string &label) const;

    /**
     * Record the run's provisioned capacity (GPU-seconds paid for,
     * whether busy or idle — on autoscaled runs this includes node
     * warm-up). Adds a PROVISIONED footer row to render() and the
     * agentsim_cost_provisioned_* metric families; the gap between it
     * and TOTAL's attributed gpu_s is the run's idle overhead.
     */
    void setProvisionedGpuSeconds(double seconds);

    /** Provisioned capacity, or 0 when never recorded. */
    double provisionedGpuSeconds() const { return provisioned_; }

    /**
     * Record GPU-seconds that checkpoint-resume saved from being
     * recomputed, attributed to a failure cause ("crash", "shed",
     * ...). Each cause adds a RECOVERED footer row to render() and an
     * agentsim_cost_recovered_gpu_seconds_<cause>_total counter;
     * repeated calls with the same cause accumulate.
     */
    void addRecoveredGpuSeconds(const std::string &cause,
                                double seconds);

    /** Recovered GPU-seconds summed over all causes. */
    double recoveredGpuSeconds() const;

    /**
     * Render the cost table: one row per label plus a TOTAL row, with
     * GPU-seconds split prefill/decode, waste, cache savings, KV
     * block-seconds and energy (via energy/projection watt-hours).
     */
    Table render(const std::string &title) const;

    /**
     * Export agentsim_cost_* families into @p registry: aggregate
     * counters plus per-label families with the sanitized label as a
     * metric-name suffix (the registry has no label dimension).
     */
    void exportMetrics(telemetry::MetricsRegistry &registry,
                       sim::Tick now) const;

    void clear();

  private:
    struct Row
    {
        std::string label;
        serving::CostLedger ledger;
        std::int64_t count = 0;
    };
    std::vector<Row> rows_;
    /** Provisioned GPU-seconds; <= 0 means "not recorded". */
    double provisioned_ = 0.0;
    /** Recovered GPU-seconds by failure cause (insertion-ordered). */
    std::vector<std::pair<std::string, double>> recovered_;

    Row &rowFor(const std::string &label);
};

/** Lowercase a label into a metric-name-safe [a-z0-9_] suffix. */
std::string sanitizeMetricLabel(const std::string &label);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_COST_REPORT_HH
