#include "core/brownout.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "telemetry/flight_recorder.hh"

namespace agentsim::core
{

namespace
{

/** Cheaper workflow with comparable task coverage, for level 2. */
agents::AgentKind
downgraded(agents::AgentKind kind)
{
    using agents::AgentKind;
    switch (kind) {
      case AgentKind::Lats:
      case AgentKind::Reflexion:
      case AgentKind::ActorCritic:
      case AgentKind::LlmCompiler:
        return AgentKind::ReAct;
      case AgentKind::SelfConsistency:
      case AgentKind::TreeOfThoughts:
      case AgentKind::BestOfN:
        return AgentKind::CoT;
      case AgentKind::CoT:
      case AgentKind::ReAct:
        return kind; // already the cheap tier
    }
    AGENTSIM_PANIC("unknown agent kind");
}

} // namespace

BrownoutController::BrownoutController(const BrownoutConfig &config)
    : config_(config)
{
    AGENTSIM_ASSERT(config_.kvLowWatermark <= config_.kvHighWatermark,
                    "brownout KV watermarks inverted");
    AGENTSIM_ASSERT(config_.burnLowThreshold <= config_.burnHighThreshold,
                    "brownout burn thresholds inverted");
    AGENTSIM_ASSERT(config_.maxLevel >= 1 && config_.maxLevel <= 2,
                    "brownout maxLevel must be 1 or 2");
}

void
BrownoutController::setLevel(sim::Tick now, int level)
{
    if (level == level_)
        return;
    if (level > level_)
        ++escalations_;
    else
        ++restorations_;
    level_ = level;
    maxLevelReached_ = std::max(maxLevelReached_, level_);
    lastChange_ = now;
    AGENTSIM_INFORM("brownout level -> %d", level_);
    if (trace_ != nullptr) {
        const char *label = level_ == 0   ? "brownout_level_0"
                            : level_ == 1 ? "brownout_level_1"
                                          : "brownout_level_2";
        trace_->instant(telemetry::TracePid::kResilience, 0, label,
                        "resilience", now);
    }
    if (recorder_ != nullptr) {
        recorder_->trigger(telemetry::IncidentTrigger::Brownout, now,
                           sim::strfmt("brownout level -> %d", level_));
    }
}

void
BrownoutController::observe(sim::Tick now, double kv_utilization,
                            double burn_rate)
{
    if (!config_.enabled)
        return;
    const bool dwelt =
        sim::toSeconds(now - lastChange_) >= config_.holdSeconds;
    const bool pressure = kv_utilization >= config_.kvHighWatermark ||
                          burn_rate >= config_.burnHighThreshold;
    const bool relief = kv_utilization <= config_.kvLowWatermark &&
                        burn_rate <= config_.burnLowThreshold;
    if (pressure && dwelt && level_ < config_.maxLevel)
        setLevel(now, level_ + 1);
    else if (relief && dwelt && level_ > 0)
        setLevel(now, level_ - 1);
}

bool
BrownoutController::apply(agents::AgentKind &kind,
                          agents::AgentConfig &config,
                          workload::Benchmark bench)
{
    if (!config_.enabled || level_ == 0)
        return false;
    bool changed = false;
    if (config.latsChildren > config_.trimLatsChildren) {
        config.latsChildren = config_.trimLatsChildren;
        changed = true;
    }
    if (config.scSamples > config_.trimScSamples) {
        config.scSamples = config_.trimScSamples;
        changed = true;
    }
    if (config.maxReflections > config_.trimMaxReflections) {
        config.maxReflections = config_.trimMaxReflections;
        changed = true;
    }
    // Only deadline-less rollouts lose their workflow: a request that
    // carries a deadline has an explicit contract, brownout may not
    // silently change what it bought.
    if (level_ >= 2 && config.llmDeadlineSeconds == 0) {
        const agents::AgentKind cheaper = downgraded(kind);
        if (cheaper != kind && agents::agentSupports(cheaper, bench)) {
            kind = cheaper;
            changed = true;
        }
    }
    if (changed)
        ++degradedRollouts_;
    return changed;
}

void
BrownoutController::exportMetrics(telemetry::MetricsRegistry &registry,
                                  sim::Tick now) const
{
    registry
        .counter("agentsim_resilience_brownout_escalations_total",
                 "Brownout level increases")
        .set(static_cast<double>(escalations_));
    registry
        .counter("agentsim_resilience_brownout_restorations_total",
                 "Brownout level decreases")
        .set(static_cast<double>(restorations_));
    registry
        .counter("agentsim_resilience_brownout_degraded_rollouts_total",
                 "Agent rollouts trimmed or downgraded by brownout")
        .set(static_cast<double>(degradedRollouts_));
    registry
        .gauge("agentsim_resilience_brownout_level",
               "Current brownout degradation level")
        .set(now, static_cast<double>(level_));
}

} // namespace agentsim::core
