#include "core/perf_report.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/strfmt.hh"
#include "telemetry/registry.hh"

namespace agentsim::core
{

std::size_t
PerfReport::findIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].first == name)
            return i;
    }
    return metrics_.size();
}

void
PerfReport::set(const std::string &name, double value)
{
    const std::size_t i = findIndex(name);
    if (i < metrics_.size())
        metrics_[i].second = value;
    else
        metrics_.emplace_back(name, value);
}

std::optional<double>
PerfReport::get(const std::string &name) const
{
    const std::size_t i = findIndex(name);
    if (i < metrics_.size())
        return metrics_[i].second;
    return std::nullopt;
}

void
PerfReport::setGenerator(const std::string &generator)
{
    generator_ = generator;
}

std::string
PerfReport::renderJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": 1,\n";
    out << "  \"generator\": \"" << generator_ << "\",\n";
    out << "  \"metrics\": {\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        out << "    \"" << metrics_[i].first
            << "\": " << sim::strfmt("%.9g", metrics_[i].second);
        out << (i + 1 < metrics_.size() ? ",\n" : "\n");
    }
    out << "  }\n";
    out << "}\n";
    return out.str();
}

bool
PerfReport::write(const std::string &path) const
{
    return telemetry::writeTextFile(path, renderJson());
}

namespace
{

/** Minimal scanner over the report's own JSON output. */
struct Scanner
{
    const std::string &s;
    std::size_t pos = 0;

    void skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool peek(char c)
    {
        skipWs();
        return pos < s.size() && s[pos] == c;
    }

    /** Parse a quoted string (no escape handling beyond \"). */
    bool string(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\' && pos + 1 < s.size())
                ++pos;
            out.push_back(s[pos++]);
        }
        return consume('"');
    }

    bool number(double &out)
    {
        skipWs();
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start)
            return false;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }
};

} // namespace

std::optional<PerfReport>
PerfReport::parse(const std::string &json)
{
    Scanner sc{json};
    if (!sc.consume('{'))
        return std::nullopt;

    PerfReport report;
    bool sawMetrics = false;
    while (!sc.peek('}')) {
        std::string key;
        if (!sc.string(key) || !sc.consume(':'))
            return std::nullopt;
        if (key == "metrics") {
            if (!sc.consume('{'))
                return std::nullopt;
            while (!sc.peek('}')) {
                std::string name;
                double value = 0.0;
                if (!sc.string(name) || !sc.consume(':') ||
                    !sc.number(value))
                    return std::nullopt;
                report.set(name, value);
                if (!sc.consume(','))
                    break;
            }
            if (!sc.consume('}'))
                return std::nullopt;
            sawMetrics = true;
        } else if (key == "generator") {
            std::string generator;
            if (!sc.string(generator))
                return std::nullopt;
            report.setGenerator(generator);
        } else {
            double ignored = 0.0;
            if (!sc.number(ignored))
                return std::nullopt;
        }
        if (!sc.consume(','))
            break;
    }
    if (!sc.consume('}') || !sawMetrics)
        return std::nullopt;
    return report;
}

std::optional<PerfReport>
PerfReport::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

bool
contains(const std::string &s, const std::string &needle)
{
    return s.find(needle) != std::string::npos;
}

} // namespace

MetricDirection
metricDirection(const std::string &name)
{
    // Simulator self-timing (host wall clock) is nondeterministic
    // across machines and must never gate a diff.
    if (name.rfind("sim_", 0) == 0)
        return MetricDirection::Informational;
    // Throughput / quality first: "tokens_per_second" must not match
    // the latency "_seconds" suffix below.
    if (endsWith(name, "_qps") || endsWith(name, "_per_second") ||
        endsWith(name, "_rate") || contains(name, "goodput") ||
        contains(name, "attainment")) {
        return MetricDirection::HigherIsBetter;
    }
    // KV spill-tier effectiveness: tokens restored instead of
    // recomputed are a win to hold; tier churn (demotions) is context
    // only and stays informational via the fallthrough.
    if (endsWith(name, "_restored_tokens"))
        return MetricDirection::HigherIsBetter;
    if (endsWith(name, "_seconds") || endsWith(name, "_p50") ||
        endsWith(name, "_p95") || endsWith(name, "_p99") ||
        endsWith(name, "_joules") || endsWith(name, "_wh") ||
        contains(name, "_p50_") || contains(name, "_p95_") ||
        contains(name, "_p99_")) {
        return MetricDirection::LowerIsBetter;
    }
    return MetricDirection::Informational;
}

CompareResult
compareReports(const PerfReport &base, const PerfReport &candidate,
               double threshold)
{
    CompareResult result;
    for (const auto &[name, base_value] : base.metrics()) {
        const auto cand_value = candidate.get(name);
        if (!cand_value) {
            result.missing.push_back(name);
            continue;
        }
        MetricDelta d;
        d.name = name;
        d.base = base_value;
        d.candidate = *cand_value;
        d.direction = metricDirection(name);
        const double denom = std::fabs(base_value);
        d.relative =
            denom > 0.0 ? (d.candidate - d.base) / denom
                        : (d.candidate == d.base ? 0.0
                           : d.candidate > d.base ? HUGE_VAL
                                                  : -HUGE_VAL);
        switch (d.direction) {
          case MetricDirection::LowerIsBetter:
            d.regressed = d.relative > threshold;
            d.improved = d.relative < -threshold;
            break;
          case MetricDirection::HigherIsBetter:
            d.regressed = d.relative < -threshold;
            d.improved = d.relative > threshold;
            break;
          case MetricDirection::Informational:
            break;
        }
        result.hasRegression = result.hasRegression || d.regressed;
        result.deltas.push_back(std::move(d));
    }
    for (const auto &[name, value] : candidate.metrics()) {
        (void)value;
        if (!base.get(name))
            result.missing.push_back(name);
    }
    return result;
}

} // namespace agentsim::core
