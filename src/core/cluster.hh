/**
 * @file
 * Multi-node agent serving with request routing — the paper's
 * keytakeaway #7 ("agent-aware request dispatching") made concrete.
 *
 * A cluster holds N identical serving nodes. A router assigns each
 * incoming request (an agent rollout or a chatbot query, drawn from a
 * weighted workload mix) to one node for its whole lifetime:
 *
 *  - RoundRobin: classic load spreading; every node ends up serving
 *    every workflow, so each node's prefix cache holds every
 *    instruction block (duplicated working sets).
 *  - LeastLoaded: route to the node with the fewest in-flight
 *    sequences + queue.
 *  - CacheAffinity: hash the workflow identity (agent x benchmark) to
 *    a home node, falling back to the least-loaded node when the home
 *    node is overloaded — concentrating identical prefixes per node.
 */

#ifndef AGENTSIM_CORE_CLUSTER_HH
#define AGENTSIM_CORE_CLUSTER_HH

#include <memory>
#include <vector>

#include "agents/workflows.hh"
#include "serving/engine.hh"
#include "stats/summary.hh"
#include "workload/benchmark.hh"

namespace agentsim::core
{

/** Request routing policies. */
enum class RoutePolicy
{
    RoundRobin,
    LeastLoaded,
    CacheAffinity,
};

std::string_view routePolicyName(RoutePolicy policy);

/** One component of the offered workload mix. */
struct WorkloadSpec
{
    /** Single-turn chatbot request instead of an agent rollout. */
    bool chatbot = false;
    agents::AgentKind agent = agents::AgentKind::ReAct;
    workload::Benchmark bench = workload::Benchmark::HotpotQA;
    agents::AgentConfig agentConfig;
    /** Relative sampling weight (> 0). */
    double weight = 1.0;
};

/** Cluster experiment configuration. */
struct ClusterConfig
{
    int numNodes = 4;
    serving::EngineConfig engineConfig;
    RoutePolicy policy = RoutePolicy::RoundRobin;
    std::vector<WorkloadSpec> mix;
    /** Offered cluster-wide load (Poisson). */
    double qps = 1.0;
    int numRequests = 200;
    std::uint64_t seed = 1;
};

/** Per-node measurements. */
struct NodeResult
{
    int requests = 0;
    double cacheHitRate = 0.0;
    serving::EngineStats engineStats;
};

/** Cluster experiment measurements. */
struct ClusterResult
{
    stats::SampleSet e2eSeconds;
    /** Latencies split by workload-mix component (same order). */
    std::vector<stats::SampleSet> perWorkloadSeconds;
    int completed = 0;
    double makespanSeconds = 0.0;
    std::vector<NodeResult> nodes;

    double p50() const { return e2eSeconds.percentile(50.0); }
    double p95() const { return e2eSeconds.percentile(95.0); }

    double
    throughputQps() const
    {
        return makespanSeconds > 0 ? completed / makespanSeconds : 0.0;
    }

    /** Request-weighted mean prefix-cache hit rate across nodes. */
    double aggregateHitRate() const;
};

/** Run one cluster experiment. */
ClusterResult runCluster(const ClusterConfig &config);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_CLUSTER_HH
