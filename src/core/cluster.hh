/**
 * @file
 * Multi-node agent serving with request routing — the paper's
 * keytakeaway #7 ("agent-aware request dispatching") made concrete.
 *
 * A cluster holds N identical serving nodes. A router assigns each
 * incoming request (an agent rollout or a chatbot query, drawn from a
 * weighted workload mix) to one node for its whole lifetime:
 *
 *  - RoundRobin: classic load spreading; every node ends up serving
 *    every workflow, so each node's prefix cache holds every
 *    instruction block (duplicated working sets).
 *  - LeastLoaded: route to the node with the fewest in-flight
 *    sequences + queue.
 *  - CacheAffinity: hash the workflow identity (agent x benchmark) to
 *    a home node, falling back to the least-loaded node when the home
 *    node is overloaded — concentrating identical prefixes per node.
 */

#ifndef AGENTSIM_CORE_CLUSTER_HH
#define AGENTSIM_CORE_CLUSTER_HH

#include <memory>
#include <vector>

#include "agents/workflows.hh"
#include "core/autoscaler.hh"
#include "core/brownout.hh"
#include "core/health.hh"
#include "serving/checkpoint.hh"
#include "serving/cost.hh"
#include "serving/engine.hh"
#include "sim/fault.hh"
#include "stats/summary.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/registry.hh"
#include "telemetry/slo.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/trace_sink.hh"
#include "workload/benchmark.hh"

namespace agentsim::core
{

/** Request routing policies. */
enum class RoutePolicy
{
    RoundRobin,
    LeastLoaded,
    CacheAffinity,
};

std::string_view routePolicyName(RoutePolicy policy);

/** One component of the offered workload mix. */
struct WorkloadSpec
{
    /** Single-turn chatbot request instead of an agent rollout. */
    bool chatbot = false;
    agents::AgentKind agent = agents::AgentKind::ReAct;
    workload::Benchmark bench = workload::Benchmark::HotpotQA;
    agents::AgentConfig agentConfig;
    /** Relative sampling weight (> 0). */
    double weight = 1.0;
};

/**
 * Client-side retry discipline for retryable serving failures (node
 * crash, admission shed). Exponential backoff with multiplicative
 * jitter; each retry re-routes, so after a crash the rollout usually
 * lands on another node — with a cold prefix cache for its workflow.
 */
struct RetryPolicy
{
    /** Total tries per rollout, first attempt included. */
    int maxAttempts = 3;
    /** Backoff before retry k is base * 2^(k-1), seconds. */
    double baseBackoffSeconds = 0.5;
    /** Backoff ceiling, seconds. */
    double maxBackoffSeconds = 8.0;
    /** Uniform jitter fraction: sleep *= 1 + U(0, jitter). */
    double jitter = 0.5;
    /** Sleep before re-probing when every node is offline, seconds. */
    double allDownPollSeconds = 0.5;

    /** Backoff for retry @p attempt (1-based), before jitter. */
    double
    backoffSeconds(int attempt) const
    {
        double b = baseBackoffSeconds;
        for (int i = 1; i < attempt; ++i)
            b *= 2;
        return b < maxBackoffSeconds ? b : maxBackoffSeconds;
    }
};

/**
 * Time-varying offered load. Constant keeps the classic homogeneous
 * Poisson arrivals at ClusterConfig::qps (bit-identical to the
 * pre-autoscaler driver). Diurnal modulates a non-homogeneous Poisson
 * process (thinning) along a raised-cosine day/night curve between
 * baseQps and peakQps, optionally with a fixed-phase burst window each
 * period — the workload shape elastic capacity exists for.
 */
struct ArrivalPattern
{
    enum class Kind
    {
        Constant,
        Diurnal,
    };
    Kind kind = Kind::Constant;

    /** Length of one diurnal cycle, seconds. */
    double periodSeconds = 240.0;
    /** Trough arrival rate, requests/s. */
    double baseQps = 0.5;
    /** Crest arrival rate, requests/s. */
    double peakQps = 4.0;
    /** Phase (fraction of the period) where the burst window opens. */
    double burstStartFraction = 0.6;
    /** Burst window length, seconds (0 disables bursts). */
    double burstDurationSeconds = 0.0;
    /** Rate multiplier inside the burst window (>= 1). */
    double burstMultiplier = 3.0;

    /** Instantaneous rate at sim-time @p t_seconds; Constant returns
     *  @p constant_qps. */
    double rateAt(double t_seconds, double constant_qps) const;
    /** Tight upper bound on rateAt (the thinning envelope). */
    double maxQps(double constant_qps) const;
};

/** Cluster experiment configuration. */
struct ClusterConfig
{
    int numNodes = 4;
    serving::EngineConfig engineConfig;
    RoutePolicy policy = RoutePolicy::RoundRobin;
    std::vector<WorkloadSpec> mix;
    /** Offered cluster-wide load (Poisson; Constant arrivals). */
    double qps = 1.0;
    /** Time-varying arrival shape (Diurnal ignores `qps`). */
    ArrivalPattern arrival;
    int numRequests = 200;
    std::uint64_t seed = 1;

    /** Chaos knobs (node crashes, stalls, tool faults). */
    sim::FaultConfig faults;
    /** Planned churn: rolling restarts through crash or drain. */
    sim::MaintenanceConfig maintenance;
    /** Per-node health EWMAs + circuit breakers for routing. */
    HealthConfig health;
    /** Overload brownout (off by default). */
    BrownoutConfig brownout;
    /**
     * Elastic capacity + predictive admission control (off by
     * default). When enabled, `numNodes` is the *initial* fleet and
     * the cluster pre-builds `autoscaler.maxNodes` nodes, parking the
     * surplus in standby; the controller then scales within
     * [minNodes, maxNodes].
     */
    AutoscalerConfig autoscaler;
    /** Node-to-node KV transfer bandwidth for live migration, B/s
     *  (defaults to the disagg interconnect assumption). */
    double migrationBandwidth = 200e9;
    /** Cadence of the KV-pressure/burn-rate/queue-depth monitor, s. */
    double monitorPeriodSeconds = 1.0;
    /** Client retry discipline for retryable failures. */
    RetryPolicy retry;
    /**
     * Episode checkpointing for agent rollouts (off by default).
     * When enabled, workflows journal resumable snapshots at
     * iteration boundaries and the retry path resumes at the last
     * completed iteration instead of replaying the episode
     * (DESIGN.md §3j). Disabled, the run is bit-identical to a build
     * without the subsystem.
     */
    serving::CheckpointPolicy checkpoint;
    /** Per-request SLO deadline for chatbot traffic, seconds (0 off). */
    double chatDeadlineSeconds = 0.0;
    /**
     * Optional cross-layer trace sink: engines emit their usual
     * tracks, and the cluster adds failover/crash instants. Must
     * outlive runCluster().
     */
    telemetry::TraceSink *traceSink = nullptr;
    /**
     * Optional metrics registry: runCluster exports cluster-wide
     * totals (retries, failovers, crashes, sheds, cancels) summed
     * across nodes. Must outlive runCluster().
     */
    telemetry::MetricsRegistry *metrics = nullptr;
    /**
     * Optional online SLO tracker attached to every node's engine:
     * one cluster-wide stream of TTFT/TBT/E2E observations with
     * burn-rate alerts (node crashes and sheds burn budget, so fault
     * injection trips alerts). Exported into `metrics` when both are
     * set. Must outlive runCluster().
     */
    telemetry::SloTracker *slo = nullptr;
    /**
     * Optional causal span collector shared by every node's engine:
     * per-request trees gain Attempt spans per retry/failover hop
     * (linked follows-from), Backoff spans for retry sleeps and
     * Migration spans for live KV moves. Blame aggregates are
     * exported into `metrics` when both are set. Must outlive
     * runCluster().
     */
    telemetry::SpanCollector *spans = nullptr;
    /**
     * Optional flight recorder: trace events and span completions tee
     * into its retroactive rings, anomaly triggers (SLO burn,
     * brownout, breaker open, autoscale, deadline-miss spikes) dump
     * incident bundles, and incident counters are exported into
     * `metrics` when both are set. Must outlive runCluster().
     */
    telemetry::FlightRecorder *recorder = nullptr;
    /**
     * Optional windowed time-series store: a read-only sampling
     * coroutine records per-node queue depth / running count / KV
     * utilization, cluster burn rates and completion counters at
     * timeseriesPeriodSeconds cadence (plus every registry scalar
     * when `metrics` is set). Pure observer — attaching it never
     * changes sim outcomes. Must outlive runCluster().
     */
    telemetry::TimeSeriesStore *timeseries = nullptr;
    /** Sampling cadence of the time-series coroutine, seconds. */
    double timeseriesPeriodSeconds = 0.5;
};

/** Per-node measurements. */
struct NodeResult
{
    int requests = 0;
    double cacheHitRate = 0.0;
    serving::EngineStats engineStats;
};

/** Cluster experiment measurements. */
struct ClusterResult
{
    stats::SampleSet e2eSeconds;
    /** Latencies split by workload-mix component (same order). */
    std::vector<stats::SampleSet> perWorkloadSeconds;
    /** Requests that finished successfully (goodput numerator). */
    int completed = 0;
    /** Requests abandoned after exhausting retries or missing SLOs. */
    int failed = 0;
    /** Requests abandoned specifically on deadline expiry. */
    int timedOut = 0;
    /** Client-side retry attempts across all requests. */
    int retries = 0;
    /** Retries split by failure cause (crash = node failure/offline,
     *  shed = engine admission shed, admission = predictive
     *  admission reject-fast). Sums to `retries`. */
    int retriesCrash = 0;
    int retriesShed = 0;
    int retriesAdmission = 0;
    /** Retries that re-routed to a different node (cold cache). */
    int failovers = 0;
    /** Failovers split by why the previous node was avoided: it was
     *  offline (crashed/draining), its breaker was open, or the
     *  router simply preferred a less-loaded peer. Sums to
     *  `failovers`. */
    int failoversOffline = 0;
    int failoversBreaker = 0;
    int failoversRebalance = 0;
    double makespanSeconds = 0.0;
    std::vector<NodeResult> nodes;
    /** What the injector actually did (crashes, stalls, downtime). */
    sim::FaultStats faultStats;
    /** What the rolling-restart schedule did. */
    sim::MaintenanceStats maintenanceStats;
    /** SLO burn-rate alerts fired during the run (0 without a
     *  ClusterConfig::slo tracker). */
    std::int64_t sloAlerts = 0;
    /** Incident bundles dumped by the flight recorder (0 without a
     *  ClusterConfig::recorder). */
    std::int64_t incidentBundles = 0;

    /** Circuit-breaker transitions and fail-open routing picks. */
    std::int64_t breakerOpens = 0;
    std::int64_t breakerCloses = 0;
    std::int64_t failOpenPicks = 0;
    /** Brownout controller activity (0 when disabled). */
    std::int64_t brownoutEscalations = 0;
    std::int64_t brownoutRestorations = 0;
    std::int64_t brownoutDegradedRollouts = 0;
    int brownoutMaxLevel = 0;
    /** Graceful drains and live migrations, summed over nodes. */
    std::int64_t drains = 0;
    std::int64_t migratedRequests = 0;
    std::int64_t migrationFallbacks = 0;
    /** Interconnect+PCIe seconds spent moving KV between nodes. */
    double migrationSeconds = 0.0;
    /** Prefill GPU-s thrown away by crash-cancelled requests. */
    double lostPrefillSeconds = 0.0;

    /**
     * Episode checkpoint/recovery accounting. With checkpointing off
     * everything is zero except lostGpuSeconds, which still prices
     * the work each retry recomputed (pure observation — tracking it
     * draws nothing and schedules nothing).
     */
    serving::RecoveryStats recovery;
    /** Attributed cost summed over completed agent episodes (feeds
     *  CostReport rows in recovery benches). */
    serving::CostLedger episodeCost;

    /** Autoscaler activity (0 unless ClusterConfig::autoscaler is
     *  enabled). */
    std::int64_t scaleOuts = 0;
    std::int64_t scaleIns = 0;
    /** Requests reject-fast'd by predictive admission control
     *  (attempts, not unique requests). */
    std::int64_t admissionRejects = 0;
    /** Node-seconds paid for over the run (busy or idle, warm-up
     *  included). Static runs report numNodes x run duration. */
    double provisionedNodeSeconds = 0.0;
    /** provisionedNodeSeconds x GPUs per node. */
    double provisionedGpuSeconds = 0.0;
    /** Warm-up seconds charged to scaled-out nodes. */
    double warmupSecondsTotal = 0.0;
    /** Most nodes simultaneously serving traffic. */
    int peakActiveNodes = 0;

    double p50() const { return e2eSeconds.percentile(50.0); }
    double p95() const { return e2eSeconds.percentile(95.0); }
    double p99() const { return e2eSeconds.percentile(99.0); }

    double
    throughputQps() const
    {
        return makespanSeconds > 0 ? completed / makespanSeconds : 0.0;
    }

    /** Successfully served fraction of the offered load. */
    double
    goodputFraction() const
    {
        const int offered = completed + failed;
        return offered > 0
                   ? static_cast<double>(completed) / offered
                   : 0.0;
    }

    /** Request-weighted mean prefix-cache hit rate across nodes. */
    double aggregateHitRate() const;
};

/**
 * Sanity-check a configuration before the run starts, with a fatal
 * for every nonsensical combination (minNodes > maxNodes, autoscaler
 * with a 0-node floor, inverted brownout watermarks, a burst window
 * that overruns its period, ...) — a clear message up front instead
 * of undefined behaviour mid-run. runCluster() calls this first;
 * exposed so tests and tools can validate configs directly.
 */
void validateClusterConfig(const ClusterConfig &config);

/** Run one cluster experiment. */
ClusterResult runCluster(const ClusterConfig &config);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_CLUSTER_HH
