/**
 * @file
 * Overload brownout: stepwise degradation of agent rollouts under
 * sustained pressure, restored with hysteresis.
 *
 * The controller watches two cluster-wide signals — KV-pool pressure
 * (max node utilization) and SLO burn rate (PR 3's SloTracker) — and
 * moves through degradation levels:
 *
 *   0 Normal   : rollouts run as configured.
 *   1 Trim     : test-time-scaling width is capped (LATS expansion
 *                children, self-consistency samples, reflection
 *                retries) — the cheapest tokens to give up, per the
 *                paper's cost-of-dynamic-reasoning analysis.
 *   2 Degrade  : deadline-less agents additionally downgrade to a
 *                cheaper workflow (LATS/ToT/BoN/SC -> linear
 *                reasoning); deadline-bearing traffic keeps its
 *                configured workflow.
 *
 * Escalation and restoration both require the pressure/relief
 * condition to hold past a dwell time, and restoration uses lower
 * watermarks than escalation (hysteresis) so the controller does not
 * flap. Every level change is a trace instant and a metric.
 */

#ifndef AGENTSIM_CORE_BROWNOUT_HH
#define AGENTSIM_CORE_BROWNOUT_HH

#include <cstdint>

#include "agents/agent.hh"
#include "sim/simulation.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace_sink.hh"
#include "workload/benchmark.hh"

namespace agentsim::core
{

/** Brownout tuning. Disabled by default (opt-in, like fault
 *  injection). */
struct BrownoutConfig
{
    bool enabled = false;

    /** KV utilization above which pressure is signalled. */
    double kvHighWatermark = 0.90;
    /** KV utilization below which relief is signalled. */
    double kvLowWatermark = 0.65;
    /** SLO burn rate above which pressure is signalled. */
    double burnHighThreshold = 1.5;
    /** SLO burn rate below which relief is signalled. */
    double burnLowThreshold = 0.75;
    /** Dwell time between level changes, seconds (hysteresis). */
    double holdSeconds = 4.0;
    /** Highest level the controller may reach (1 or 2). */
    int maxLevel = 2;

    /** Level >= 1 caps: LATS children per expansion. */
    int trimLatsChildren = 2;
    /** Level >= 1 caps: self-consistency samples. */
    int trimScSamples = 2;
    /** Level >= 1 caps: reflection retries. */
    int trimMaxReflections = 1;
};

/**
 * The controller. observe() is fed by a periodic monitor; apply() is
 * called by the dispatch path on every agent rollout about to start.
 * Single-threaded, owned by runCluster.
 */
class BrownoutController
{
  public:
    explicit BrownoutController(const BrownoutConfig &config);

    /** Emit level changes as trace instants (kResilience, tid 0). */
    void attachTrace(telemetry::TraceSink *sink) { trace_ = sink; }

    /** Every level change becomes an incident trigger (nullptr
     *  detaches). */
    void attachRecorder(telemetry::FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Feed one pressure sample; may change the level. */
    void observe(sim::Tick now, double kv_utilization,
                 double burn_rate);

    int level() const { return level_; }
    int maxLevelReached() const { return maxLevelReached_; }
    std::int64_t escalations() const { return escalations_; }
    std::int64_t restorations() const { return restorations_; }
    std::int64_t degradedRollouts() const { return degradedRollouts_; }

    /**
     * Apply the current level to a rollout about to dispatch:
     * level >= 1 trims test-time-scaling width; level >= 2 downgrades
     * deadline-less rollouts to a cheaper workflow supported on
     * @p bench. @return true if anything was changed.
     */
    bool apply(agents::AgentKind &kind, agents::AgentConfig &config,
               workload::Benchmark bench);

    void exportMetrics(telemetry::MetricsRegistry &registry,
                       sim::Tick now) const;

  private:
    void setLevel(sim::Tick now, int level);

    BrownoutConfig config_;
    telemetry::TraceSink *trace_ = nullptr;
    telemetry::FlightRecorder *recorder_ = nullptr;
    int level_ = 0;
    int maxLevelReached_ = 0;
    sim::Tick lastChange_ = 0;
    std::int64_t escalations_ = 0;
    std::int64_t restorations_ = 0;
    std::int64_t degradedRollouts_ = 0;
};

} // namespace agentsim::core

#endif // AGENTSIM_CORE_BROWNOUT_HH
