/**
 * @file
 * The concrete tool catalog of the paper's benchmarks (Table II):
 * Wikipedia search/lookup, WebShop navigation, the Wolfram Alpha API,
 * a Python calculator/executor, and HumanEval's self-test tool (which
 * itself calls the LLM, keeping the GPU busy during "tool" time).
 *
 * Latency calibration follows the paper's own measurements (§IV-A):
 * Wikipedia ≈ 1.2 s per call with a heavy tail, WebShop ≈ 20 ms
 * against a locally-hosted site.
 */

#ifndef AGENTSIM_TOOLS_CATALOG_HH
#define AGENTSIM_TOOLS_CATALOG_HH

#include <memory>
#include <vector>

#include "serving/engine.hh"
#include "tools/tool.hh"

namespace agentsim::tools
{

/** Wikipedia API search (HotpotQA). */
std::unique_ptr<Tool> makeWikipediaSearch(sim::Simulation &sim);

/** Wikipedia API keyword lookup (HotpotQA). */
std::unique_ptr<Tool> makeWikipediaLookup(sim::Simulation &sim);

/** WebShop page search against the locally hosted site (WebShop). */
std::unique_ptr<Tool> makeWebshopSearch(sim::Simulation &sim);

/** WebShop click/navigation action (WebShop). */
std::unique_ptr<Tool> makeWebshopClick(sim::Simulation &sim);

/** Wolfram Alpha equation solving API (MATH). */
std::unique_ptr<Tool> makeWolframAlpha(sim::Simulation &sim);

/** Local Python-based calculator (MATH). */
std::unique_ptr<Tool> makePythonCalculator(sim::Simulation &sim);

/**
 * HumanEval self-test execution: generates test code with the LLM
 * (GPU-busy) and then runs candidate + tests in a sandbox (CPU).
 */
class SelfTestTool : public Tool
{
  public:
    SelfTestTool(sim::Simulation &sim, serving::LlmEngine &engine,
                 std::uint64_t seed);

    bool usesGpu() const override { return true; }

    double expectedLatencySeconds() const override
    {
        // Only the sandboxed execution leaves the GPU idle; the
        // test-generation LLM call keeps it busy and must not be
        // counted as parkable time.
        return 0.25;
    }

  protected:
    sim::Task<ToolResult> execute(sim::Rng &rng) override;

  private:
    serving::LlmEngine &engine_;
    std::uint64_t seed_;
    std::uint64_t calls_ = 0;
};

std::unique_ptr<Tool> makeSelfTest(sim::Simulation &sim,
                                   serving::LlmEngine &engine,
                                   std::uint64_t seed);

/**
 * The tool belt an agent carries for one benchmark: a non-empty list
 * of tools the policy chooses among uniformly (the workload model does
 * not distinguish which tool uncovers which fact).
 */
class ToolSet
{
  public:
    void add(std::unique_ptr<Tool> tool);

    bool empty() const { return tools_.empty(); }
    std::size_t size() const { return tools_.size(); }

    /** Pick a tool for the next action. */
    Tool &pick(sim::Rng &rng);

    /** Access by index (reporting). */
    Tool &at(std::size_t i);
    const Tool &at(std::size_t i) const;

    /** Total invocations across all tools. */
    std::int64_t totalInvocations() const;

    /**
     * Expected GPU-idle seconds of an upcoming tool call under the
     * uniform pick policy: the mean of the tools' own estimates. The
     * agent layer passes this as the KV-parking hint when it knows a
     * tool call follows the LLM step it is about to issue.
     */
    double meanLatencySeconds() const;

  private:
    std::vector<std::unique_ptr<Tool>> tools_;
};

} // namespace agentsim::tools

#endif // AGENTSIM_TOOLS_CATALOG_HH
