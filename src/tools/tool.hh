/**
 * @file
 * Tool abstraction: the external-environment side of the agent loop.
 *
 * A tool call occupies virtual time (sampled from a per-tool latency
 * distribution) and returns an observation of some token length, which
 * the agent appends to its context. Tools optionally limit concurrency
 * (shared external endpoints) and may themselves consume GPU time by
 * issuing LLM calls (HumanEval's self-test generation, §IV-A).
 */

#ifndef AGENTSIM_TOOLS_TOOL_HH
#define AGENTSIM_TOOLS_TOOL_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/awaitable.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"

namespace agentsim::tools
{

/** Outcome of one tool invocation. */
struct ToolResult
{
    /** Observation length appended to the agent context, tokens. */
    std::int64_t observationTokens = 0;
    /** Wall time the call took (including any queueing). */
    double latencySeconds = 0.0;
    /** True if the call consumed GPU time (LLM-in-the-loop tools). */
    bool usedGpu = false;
    /**
     * Injected fault: the call burned wall time and returned an error
     * observation instead of a useful one. The agent still appends the
     * (short) error text to its context and carries on.
     */
    bool failed = false;
};

/**
 * Fault-injection profile for a tool endpoint (chaos experiments).
 * Sampled from a tool-owned deterministic stream, so enabling faults
 * on one tool never perturbs another tool's draws.
 */
struct FaultProfile
{
    /** Probability a call fails outright. */
    double failureProb = 0.0;
    /** Wall time a failing call burns before erroring, seconds. */
    double failureSeconds = 1.0;
    /** Error-observation length returned by a failed call, tokens. */
    std::int64_t failureObservationTokens = 16;
    /** Probability a (non-failing) call hits a latency spike. */
    double slowdownProb = 0.0;
    /** Latency multiplier during a spike. */
    double slowdownFactor = 4.0;
    /** Seed for the tool's "fault.tool" stream. */
    std::uint64_t seed = 1;
};

/** Latency distribution specification. */
struct LatencySpec
{
    enum class Dist
    {
        Constant,  ///< a seconds, exactly
        Uniform,   ///< uniform in [a, b] seconds
        Lognormal, ///< mean a seconds, log-sigma b (heavy tailed)
    };

    Dist dist = Dist::Constant;
    double a = 0.0;
    double b = 0.0;

    /** Sample one latency in seconds. */
    double sample(sim::Rng &rng) const;

    /** Expected value of the distribution, seconds. */
    double mean() const;
};

/** Observation-length distribution specification. */
struct ObservationSpec
{
    double mean = 100.0;
    double sd = 30.0;
    std::int64_t minTokens = 10;
    std::int64_t maxTokens = 2000;

    /** Sample one observation length in tokens. */
    std::int64_t sample(sim::Rng &rng) const;
};

/**
 * Base class for simulated tools.
 */
class Tool
{
  public:
    /**
     * @param sim owning simulation.
     * @param name stable tool name (for traces and reports).
     * @param max_concurrency >0 limits in-flight calls; 0 = unlimited.
     */
    Tool(sim::Simulation &sim, std::string name, int max_concurrency = 0);

    virtual ~Tool() = default;

    Tool(const Tool &) = delete;
    Tool &operator=(const Tool &) = delete;

    const std::string &name() const { return name_; }

    /** True if invocations keep the GPU busy (LLM-backed tools). */
    virtual bool usesGpu() const { return false; }

    /**
     * Expected GPU-idle wall time of one invocation, seconds — the
     * agent layer's KV-parking hint (how long its chain will sit idle
     * while this tool runs). 0 for tools with no usable estimate.
     */
    virtual double expectedLatencySeconds() const { return 0.0; }

    /**
     * Invoke the tool. @p rng is the caller's request-level stream so
     * results are deterministic per request regardless of tool
     * sharing.
     */
    sim::Task<ToolResult> invoke(sim::Rng &rng);

    /**
     * Enable fault injection on this endpoint. Failures and latency
     * spikes are sampled per call from a stream derived from
     * (profile.seed, "fault.tool", hash(name)).
     */
    void setFaults(const FaultProfile &profile);

    /** Number of completed invocations (including failed ones). */
    std::int64_t invocations() const { return invocations_; }

    /** Number of injected call failures. */
    std::int64_t failures() const { return failures_; }

    /** Number of injected latency spikes. */
    std::int64_t slowdowns() const { return slowdowns_; }

  protected:
    /** Tool-specific behaviour; runs inside the concurrency permit. */
    virtual sim::Task<ToolResult> execute(sim::Rng &rng) = 0;

    sim::Simulation &sim_;

  private:
    std::string name_;
    std::optional<sim::Semaphore> limiter_;
    std::int64_t invocations_ = 0;
    std::int64_t failures_ = 0;
    std::int64_t slowdowns_ = 0;
    std::optional<FaultProfile> faults_;
    std::optional<sim::Rng> faultRng_;
};

/**
 * A tool fully described by latency and observation distributions —
 * covers Wikipedia, WebShop navigation, Wolfram and the Python
 * calculator/executor.
 */
class StochasticTool : public Tool
{
  public:
    StochasticTool(sim::Simulation &sim, std::string name,
                   LatencySpec latency, ObservationSpec observation,
                   int max_concurrency = 0);

    const LatencySpec &latency() const { return latency_; }
    const ObservationSpec &observation() const { return observation_; }

    double expectedLatencySeconds() const override
    {
        return latency_.mean();
    }

  protected:
    sim::Task<ToolResult> execute(sim::Rng &rng) override;

  private:
    LatencySpec latency_;
    ObservationSpec observation_;
};

} // namespace agentsim::tools

#endif // AGENTSIM_TOOLS_TOOL_HH
