#include "tools/tool.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace agentsim::tools
{

double
LatencySpec::sample(sim::Rng &rng) const
{
    switch (dist) {
      case Dist::Constant:
        return a;
      case Dist::Uniform:
        return rng.uniform(a, b);
      case Dist::Lognormal:
        return rng.lognormalMean(a, b);
    }
    AGENTSIM_PANIC("unknown latency distribution");
}

double
LatencySpec::mean() const
{
    switch (dist) {
      case Dist::Constant:
        return a;
      case Dist::Uniform:
        return 0.5 * (a + b);
      case Dist::Lognormal:
        return a;
    }
    AGENTSIM_PANIC("unknown latency distribution");
}

std::int64_t
ObservationSpec::sample(sim::Rng &rng) const
{
    const double x = rng.normal(mean, sd);
    const auto tokens = static_cast<std::int64_t>(std::llround(x));
    return std::clamp(tokens, minTokens, maxTokens);
}

Tool::Tool(sim::Simulation &sim, std::string name, int max_concurrency)
    : sim_(sim), name_(std::move(name))
{
    if (max_concurrency > 0)
        limiter_.emplace(sim_, max_concurrency);
}

sim::Task<ToolResult>
Tool::invoke(sim::Rng &rng)
{
    const sim::Tick start = sim_.now();
    if (limiter_)
        co_await limiter_->acquire();

    ToolResult result;
    try {
        result = co_await execute(rng);
    } catch (...) {
        if (limiter_)
            limiter_->release();
        throw;
    }
    if (limiter_)
        limiter_->release();

    ++invocations_;
    result.latencySeconds = sim::toSeconds(sim_.now() - start);
    co_return result;
}

StochasticTool::StochasticTool(sim::Simulation &sim, std::string name,
                               LatencySpec latency,
                               ObservationSpec observation,
                               int max_concurrency)
    : Tool(sim, std::move(name), max_concurrency), latency_(latency),
      observation_(observation)
{
}

sim::Task<ToolResult>
StochasticTool::execute(sim::Rng &rng)
{
    const double latency = latency_.sample(rng);
    co_await sim::delaySec(sim_, latency);
    ToolResult result;
    result.observationTokens = observation_.sample(rng);
    co_return result;
}

} // namespace agentsim::tools
