#include "tools/tool.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace agentsim::tools
{

double
LatencySpec::sample(sim::Rng &rng) const
{
    switch (dist) {
      case Dist::Constant:
        return a;
      case Dist::Uniform:
        return rng.uniform(a, b);
      case Dist::Lognormal:
        return rng.lognormalMean(a, b);
    }
    AGENTSIM_PANIC("unknown latency distribution");
}

double
LatencySpec::mean() const
{
    switch (dist) {
      case Dist::Constant:
        return a;
      case Dist::Uniform:
        return 0.5 * (a + b);
      case Dist::Lognormal:
        return a;
    }
    AGENTSIM_PANIC("unknown latency distribution");
}

std::int64_t
ObservationSpec::sample(sim::Rng &rng) const
{
    const double x = rng.normal(mean, sd);
    const auto tokens = static_cast<std::int64_t>(std::llround(x));
    return std::clamp(tokens, minTokens, maxTokens);
}

Tool::Tool(sim::Simulation &sim, std::string name, int max_concurrency)
    : sim_(sim), name_(std::move(name))
{
    if (max_concurrency > 0)
        limiter_.emplace(sim_, max_concurrency);
}

void
Tool::setFaults(const FaultProfile &profile)
{
    faults_ = profile;
    faultRng_.emplace(profile.seed, "fault.tool", sim::fnv1a(name_));
}

sim::Task<ToolResult>
Tool::invoke(sim::Rng &rng)
{
    const sim::Tick start = sim_.now();
    if (limiter_)
        co_await limiter_->acquire();

    // Sample injected faults before executing: a failing call still
    // holds its concurrency permit while burning wall time (a wedged
    // endpoint blocks other callers, just like a healthy slow one).
    bool fail = false;
    double slowdown = 1.0;
    if (faults_) {
        fail = faultRng_->bernoulli(faults_->failureProb);
        if (!fail && faultRng_->bernoulli(faults_->slowdownProb))
            slowdown = faults_->slowdownFactor;
    }

    ToolResult result;
    try {
        if (fail) {
            co_await sim::delaySec(sim_, faults_->failureSeconds);
            result.failed = true;
            result.observationTokens =
                faults_->failureObservationTokens;
            ++failures_;
        } else {
            const sim::Tick exec_start = sim_.now();
            result = co_await execute(rng);
            if (slowdown > 1.0) {
                const double elapsed =
                    sim::toSeconds(sim_.now() - exec_start);
                co_await sim::delaySec(sim_,
                                       elapsed * (slowdown - 1.0));
                ++slowdowns_;
            }
        }
    } catch (...) {
        if (limiter_)
            limiter_->release();
        throw;
    }
    if (limiter_)
        limiter_->release();

    ++invocations_;
    result.latencySeconds = sim::toSeconds(sim_.now() - start);
    co_return result;
}

StochasticTool::StochasticTool(sim::Simulation &sim, std::string name,
                               LatencySpec latency,
                               ObservationSpec observation,
                               int max_concurrency)
    : Tool(sim, std::move(name), max_concurrency), latency_(latency),
      observation_(observation)
{
}

sim::Task<ToolResult>
StochasticTool::execute(sim::Rng &rng)
{
    const double latency = latency_.sample(rng);
    co_await sim::delaySec(sim_, latency);
    ToolResult result;
    result.observationTokens = observation_.sample(rng);
    co_return result;
}

} // namespace agentsim::tools
