#include "tools/catalog.hh"

#include "sim/logging.hh"

namespace agentsim::tools
{

namespace
{

using Dist = LatencySpec::Dist;

std::unique_ptr<Tool>
stochastic(sim::Simulation &sim, const char *name, LatencySpec lat,
           ObservationSpec obs, int max_concurrency = 0)
{
    return std::make_unique<StochasticTool>(sim, name, lat, obs,
                                            max_concurrency);
}

} // namespace

std::unique_ptr<Tool>
makeWikipediaSearch(sim::Simulation &sim)
{
    // Paper: Wikipedia API calls average ~1.2 s, heavy tailed; search
    // returns page snippets of a few hundred tokens.
    return stochastic(sim, "wikipedia.search",
                      {Dist::Lognormal, 1.2, 0.55},
                      {250.0, 90.0, 40, 800});
}

std::unique_ptr<Tool>
makeWikipediaLookup(sim::Simulation &sim)
{
    // Keyword lookup within a fetched page: slightly faster, shorter
    // observations.
    return stochastic(sim, "wikipedia.lookup",
                      {Dist::Lognormal, 0.9, 0.50},
                      {140.0, 50.0, 20, 500});
}

std::unique_ptr<Tool>
makeWebshopSearch(sim::Simulation &sim)
{
    // Locally hosted site: ~20 ms; result pages are long (item lists
    // rendered as text fill most of the observation budget).
    return stochastic(sim, "webshop.search",
                      {Dist::Uniform, 0.015, 0.030},
                      {520.0, 160.0, 100, 1400});
}

std::unique_ptr<Tool>
makeWebshopClick(sim::Simulation &sim)
{
    return stochastic(sim, "webshop.click",
                      {Dist::Uniform, 0.012, 0.025},
                      {400.0, 120.0, 60, 1100});
}

std::unique_ptr<Tool>
makeWolframAlpha(sim::Simulation &sim)
{
    // Remote API: a few hundred ms; terse symbolic answers.
    return stochastic(sim, "wolfram.alpha",
                      {Dist::Lognormal, 0.35, 0.40},
                      {60.0, 25.0, 10, 200});
}

std::unique_ptr<Tool>
makePythonCalculator(sim::Simulation &sim)
{
    // Local interpreter startup + evaluation.
    return stochastic(sim, "python.calc",
                      {Dist::Lognormal, 0.15, 0.35},
                      {45.0, 20.0, 5, 150});
}

SelfTestTool::SelfTestTool(sim::Simulation &sim,
                           serving::LlmEngine &engine,
                           std::uint64_t seed)
    : Tool(sim, "humaneval.selftest"), engine_(engine), seed_(seed)
{
}

sim::Task<ToolResult>
SelfTestTool::execute(sim::Rng &rng)
{
    // 1. Generate test code with the LLM (GPU-busy "tool" phase, the
    //    HumanEval peculiarity called out in Fig 6).
    const std::uint64_t call = calls_++;
    serving::GenRequest req;
    const std::int64_t prompt_len = 180 + rng.uniformInt(0, 60);
    req.prompt.reserve(static_cast<std::size_t>(prompt_len));
    const std::uint64_t stream =
        sim::hashCombine(sim::hashCombine(seed_, 0x5e1f7e57ULL), call);
    for (std::int64_t i = 0; i < prompt_len; ++i)
        req.prompt.push_back(
            sim::hashCombine(stream, static_cast<std::uint64_t>(i)));
    req.maxNewTokens = 80 + rng.uniformInt(0, 60);
    const serving::GenResult gen =
        co_await engine_.generate(std::move(req));

    // 2. Run candidate + generated tests in the sandbox (CPU).
    co_await sim::delaySec(sim_, rng.lognormalMean(0.25, 0.35));

    ToolResult result;
    result.usedGpu = true;
    result.observationTokens =
        std::max<std::int64_t>(20, 60 + rng.uniformInt(0, 80));
    (void)gen;
    co_return result;
}

std::unique_ptr<Tool>
makeSelfTest(sim::Simulation &sim, serving::LlmEngine &engine,
             std::uint64_t seed)
{
    return std::make_unique<SelfTestTool>(sim, engine, seed);
}

void
ToolSet::add(std::unique_ptr<Tool> tool)
{
    AGENTSIM_ASSERT(tool != nullptr, "null tool");
    tools_.push_back(std::move(tool));
}

Tool &
ToolSet::pick(sim::Rng &rng)
{
    AGENTSIM_ASSERT(!tools_.empty(), "picking from an empty tool set");
    const auto idx = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(tools_.size()) - 1));
    return *tools_[idx];
}

Tool &
ToolSet::at(std::size_t i)
{
    AGENTSIM_ASSERT(i < tools_.size(), "tool index out of range");
    return *tools_[i];
}

const Tool &
ToolSet::at(std::size_t i) const
{
    AGENTSIM_ASSERT(i < tools_.size(), "tool index out of range");
    return *tools_[i];
}

std::int64_t
ToolSet::totalInvocations() const
{
    std::int64_t total = 0;
    for (const auto &t : tools_)
        total += t->invocations();
    return total;
}

double
ToolSet::meanLatencySeconds() const
{
    if (tools_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &t : tools_)
        total += t->expectedLatencySeconds();
    return total / static_cast<double>(tools_.size());
}

} // namespace agentsim::tools
