file(REMOVE_RECURSE
  "CMakeFiles/sustainability_report.dir/sustainability_report.cpp.o"
  "CMakeFiles/sustainability_report.dir/sustainability_report.cpp.o.d"
  "sustainability_report"
  "sustainability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sustainability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
