# Empty compiler generated dependencies file for sustainability_report.
# This may be replaced when dependencies are built.
