# Empty compiler generated dependencies file for agent_designer.
# This may be replaced when dependencies are built.
