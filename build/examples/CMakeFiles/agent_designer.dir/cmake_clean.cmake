file(REMOVE_RECURSE
  "CMakeFiles/agent_designer.dir/agent_designer.cpp.o"
  "CMakeFiles/agent_designer.dir/agent_designer.cpp.o.d"
  "agent_designer"
  "agent_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
