file(REMOVE_RECURSE
  "libagentsim_agents.a"
)
