file(REMOVE_RECURSE
  "CMakeFiles/agentsim_agents.dir/accuracy.cc.o"
  "CMakeFiles/agentsim_agents.dir/accuracy.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/actor_critic.cc.o"
  "CMakeFiles/agentsim_agents.dir/actor_critic.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/agent.cc.o"
  "CMakeFiles/agentsim_agents.dir/agent.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/cot.cc.o"
  "CMakeFiles/agentsim_agents.dir/cot.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/factory.cc.o"
  "CMakeFiles/agentsim_agents.dir/factory.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/lats.cc.o"
  "CMakeFiles/agentsim_agents.dir/lats.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/llm_compiler.cc.o"
  "CMakeFiles/agentsim_agents.dir/llm_compiler.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/plan.cc.o"
  "CMakeFiles/agentsim_agents.dir/plan.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/prompt.cc.o"
  "CMakeFiles/agentsim_agents.dir/prompt.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/react.cc.o"
  "CMakeFiles/agentsim_agents.dir/react.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/reflexion.cc.o"
  "CMakeFiles/agentsim_agents.dir/reflexion.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/self_consistency.cc.o"
  "CMakeFiles/agentsim_agents.dir/self_consistency.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/static_search.cc.o"
  "CMakeFiles/agentsim_agents.dir/static_search.cc.o.d"
  "CMakeFiles/agentsim_agents.dir/trace.cc.o"
  "CMakeFiles/agentsim_agents.dir/trace.cc.o.d"
  "libagentsim_agents.a"
  "libagentsim_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
