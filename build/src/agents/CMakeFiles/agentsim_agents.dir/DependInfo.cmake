
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agents/accuracy.cc" "src/agents/CMakeFiles/agentsim_agents.dir/accuracy.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/accuracy.cc.o.d"
  "/root/repo/src/agents/actor_critic.cc" "src/agents/CMakeFiles/agentsim_agents.dir/actor_critic.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/actor_critic.cc.o.d"
  "/root/repo/src/agents/agent.cc" "src/agents/CMakeFiles/agentsim_agents.dir/agent.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/agent.cc.o.d"
  "/root/repo/src/agents/cot.cc" "src/agents/CMakeFiles/agentsim_agents.dir/cot.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/cot.cc.o.d"
  "/root/repo/src/agents/factory.cc" "src/agents/CMakeFiles/agentsim_agents.dir/factory.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/factory.cc.o.d"
  "/root/repo/src/agents/lats.cc" "src/agents/CMakeFiles/agentsim_agents.dir/lats.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/lats.cc.o.d"
  "/root/repo/src/agents/llm_compiler.cc" "src/agents/CMakeFiles/agentsim_agents.dir/llm_compiler.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/llm_compiler.cc.o.d"
  "/root/repo/src/agents/plan.cc" "src/agents/CMakeFiles/agentsim_agents.dir/plan.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/plan.cc.o.d"
  "/root/repo/src/agents/prompt.cc" "src/agents/CMakeFiles/agentsim_agents.dir/prompt.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/prompt.cc.o.d"
  "/root/repo/src/agents/react.cc" "src/agents/CMakeFiles/agentsim_agents.dir/react.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/react.cc.o.d"
  "/root/repo/src/agents/reflexion.cc" "src/agents/CMakeFiles/agentsim_agents.dir/reflexion.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/reflexion.cc.o.d"
  "/root/repo/src/agents/self_consistency.cc" "src/agents/CMakeFiles/agentsim_agents.dir/self_consistency.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/self_consistency.cc.o.d"
  "/root/repo/src/agents/static_search.cc" "src/agents/CMakeFiles/agentsim_agents.dir/static_search.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/static_search.cc.o.d"
  "/root/repo/src/agents/trace.cc" "src/agents/CMakeFiles/agentsim_agents.dir/trace.cc.o" "gcc" "src/agents/CMakeFiles/agentsim_agents.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/agentsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/agentsim_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/agentsim_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/agentsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/agentsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/agentsim_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/agentsim_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
