# Empty dependencies file for agentsim_agents.
# This may be replaced when dependencies are built.
