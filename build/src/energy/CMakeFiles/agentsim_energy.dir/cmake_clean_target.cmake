file(REMOVE_RECURSE
  "libagentsim_energy.a"
)
