# Empty compiler generated dependencies file for agentsim_energy.
# This may be replaced when dependencies are built.
