file(REMOVE_RECURSE
  "CMakeFiles/agentsim_energy.dir/projection.cc.o"
  "CMakeFiles/agentsim_energy.dir/projection.cc.o.d"
  "libagentsim_energy.a"
  "libagentsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
