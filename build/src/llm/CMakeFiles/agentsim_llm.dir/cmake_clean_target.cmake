file(REMOVE_RECURSE
  "libagentsim_llm.a"
)
