# Empty dependencies file for agentsim_llm.
# This may be replaced when dependencies are built.
