
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/hardware.cc" "src/llm/CMakeFiles/agentsim_llm.dir/hardware.cc.o" "gcc" "src/llm/CMakeFiles/agentsim_llm.dir/hardware.cc.o.d"
  "/root/repo/src/llm/model_spec.cc" "src/llm/CMakeFiles/agentsim_llm.dir/model_spec.cc.o" "gcc" "src/llm/CMakeFiles/agentsim_llm.dir/model_spec.cc.o.d"
  "/root/repo/src/llm/perf_model.cc" "src/llm/CMakeFiles/agentsim_llm.dir/perf_model.cc.o" "gcc" "src/llm/CMakeFiles/agentsim_llm.dir/perf_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/agentsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
