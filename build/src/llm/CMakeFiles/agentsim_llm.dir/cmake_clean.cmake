file(REMOVE_RECURSE
  "CMakeFiles/agentsim_llm.dir/hardware.cc.o"
  "CMakeFiles/agentsim_llm.dir/hardware.cc.o.d"
  "CMakeFiles/agentsim_llm.dir/model_spec.cc.o"
  "CMakeFiles/agentsim_llm.dir/model_spec.cc.o.d"
  "CMakeFiles/agentsim_llm.dir/perf_model.cc.o"
  "CMakeFiles/agentsim_llm.dir/perf_model.cc.o.d"
  "libagentsim_llm.a"
  "libagentsim_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
