file(REMOVE_RECURSE
  "libagentsim_stats.a"
)
