file(REMOVE_RECURSE
  "CMakeFiles/agentsim_stats.dir/gauge.cc.o"
  "CMakeFiles/agentsim_stats.dir/gauge.cc.o.d"
  "CMakeFiles/agentsim_stats.dir/histogram.cc.o"
  "CMakeFiles/agentsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/agentsim_stats.dir/pareto.cc.o"
  "CMakeFiles/agentsim_stats.dir/pareto.cc.o.d"
  "CMakeFiles/agentsim_stats.dir/summary.cc.o"
  "CMakeFiles/agentsim_stats.dir/summary.cc.o.d"
  "libagentsim_stats.a"
  "libagentsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
