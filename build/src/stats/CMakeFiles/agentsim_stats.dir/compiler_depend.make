# Empty compiler generated dependencies file for agentsim_stats.
# This may be replaced when dependencies are built.
