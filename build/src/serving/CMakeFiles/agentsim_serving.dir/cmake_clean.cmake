file(REMOVE_RECURSE
  "CMakeFiles/agentsim_serving.dir/disagg.cc.o"
  "CMakeFiles/agentsim_serving.dir/disagg.cc.o.d"
  "CMakeFiles/agentsim_serving.dir/engine.cc.o"
  "CMakeFiles/agentsim_serving.dir/engine.cc.o.d"
  "libagentsim_serving.a"
  "libagentsim_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
