file(REMOVE_RECURSE
  "libagentsim_serving.a"
)
