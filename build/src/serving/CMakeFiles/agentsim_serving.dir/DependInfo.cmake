
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serving/disagg.cc" "src/serving/CMakeFiles/agentsim_serving.dir/disagg.cc.o" "gcc" "src/serving/CMakeFiles/agentsim_serving.dir/disagg.cc.o.d"
  "/root/repo/src/serving/engine.cc" "src/serving/CMakeFiles/agentsim_serving.dir/engine.cc.o" "gcc" "src/serving/CMakeFiles/agentsim_serving.dir/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/agentsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/agentsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/agentsim_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/agentsim_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
