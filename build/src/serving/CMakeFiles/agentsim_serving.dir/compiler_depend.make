# Empty compiler generated dependencies file for agentsim_serving.
# This may be replaced when dependencies are built.
