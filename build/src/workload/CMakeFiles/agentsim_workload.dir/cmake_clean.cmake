file(REMOVE_RECURSE
  "CMakeFiles/agentsim_workload.dir/benchmark.cc.o"
  "CMakeFiles/agentsim_workload.dir/benchmark.cc.o.d"
  "CMakeFiles/agentsim_workload.dir/token_stream.cc.o"
  "CMakeFiles/agentsim_workload.dir/token_stream.cc.o.d"
  "CMakeFiles/agentsim_workload.dir/toolset_factory.cc.o"
  "CMakeFiles/agentsim_workload.dir/toolset_factory.cc.o.d"
  "libagentsim_workload.a"
  "libagentsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
