# Empty compiler generated dependencies file for agentsim_workload.
# This may be replaced when dependencies are built.
