file(REMOVE_RECURSE
  "libagentsim_workload.a"
)
