file(REMOVE_RECURSE
  "CMakeFiles/agentsim_kv.dir/block_manager.cc.o"
  "CMakeFiles/agentsim_kv.dir/block_manager.cc.o.d"
  "libagentsim_kv.a"
  "libagentsim_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
