file(REMOVE_RECURSE
  "libagentsim_kv.a"
)
