# Empty dependencies file for agentsim_kv.
# This may be replaced when dependencies are built.
