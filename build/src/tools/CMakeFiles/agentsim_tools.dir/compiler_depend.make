# Empty compiler generated dependencies file for agentsim_tools.
# This may be replaced when dependencies are built.
