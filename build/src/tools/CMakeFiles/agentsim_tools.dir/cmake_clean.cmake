file(REMOVE_RECURSE
  "CMakeFiles/agentsim_tools.dir/catalog.cc.o"
  "CMakeFiles/agentsim_tools.dir/catalog.cc.o.d"
  "CMakeFiles/agentsim_tools.dir/tool.cc.o"
  "CMakeFiles/agentsim_tools.dir/tool.cc.o.d"
  "libagentsim_tools.a"
  "libagentsim_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
