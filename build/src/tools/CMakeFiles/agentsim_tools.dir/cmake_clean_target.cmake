file(REMOVE_RECURSE
  "libagentsim_tools.a"
)
