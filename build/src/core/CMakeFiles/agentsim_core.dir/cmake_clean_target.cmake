file(REMOVE_RECURSE
  "libagentsim_core.a"
)
