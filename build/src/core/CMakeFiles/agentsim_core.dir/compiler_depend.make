# Empty compiler generated dependencies file for agentsim_core.
# This may be replaced when dependencies are built.
