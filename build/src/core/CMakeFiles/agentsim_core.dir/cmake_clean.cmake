file(REMOVE_RECURSE
  "CMakeFiles/agentsim_core.dir/cluster.cc.o"
  "CMakeFiles/agentsim_core.dir/cluster.cc.o.d"
  "CMakeFiles/agentsim_core.dir/probe.cc.o"
  "CMakeFiles/agentsim_core.dir/probe.cc.o.d"
  "CMakeFiles/agentsim_core.dir/serving_system.cc.o"
  "CMakeFiles/agentsim_core.dir/serving_system.cc.o.d"
  "CMakeFiles/agentsim_core.dir/table.cc.o"
  "CMakeFiles/agentsim_core.dir/table.cc.o.d"
  "CMakeFiles/agentsim_core.dir/trace_export.cc.o"
  "CMakeFiles/agentsim_core.dir/trace_export.cc.o.d"
  "libagentsim_core.a"
  "libagentsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
