file(REMOVE_RECURSE
  "CMakeFiles/agentsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/agentsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/agentsim_sim.dir/logging.cc.o"
  "CMakeFiles/agentsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/agentsim_sim.dir/rng.cc.o"
  "CMakeFiles/agentsim_sim.dir/rng.cc.o.d"
  "CMakeFiles/agentsim_sim.dir/simulation.cc.o"
  "CMakeFiles/agentsim_sim.dir/simulation.cc.o.d"
  "libagentsim_sim.a"
  "libagentsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
