file(REMOVE_RECURSE
  "libagentsim_sim.a"
)
