# Empty dependencies file for agentsim_sim.
# This may be replaced when dependencies are built.
