# Empty dependencies file for fig23_user_growth.
# This may be replaced when dependencies are built.
