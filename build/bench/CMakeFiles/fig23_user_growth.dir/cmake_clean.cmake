file(REMOVE_RECURSE
  "CMakeFiles/fig23_user_growth.dir/fig23_user_growth.cc.o"
  "CMakeFiles/fig23_user_growth.dir/fig23_user_growth.cc.o.d"
  "fig23_user_growth"
  "fig23_user_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_user_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
