file(REMOVE_RECURSE
  "CMakeFiles/fig04_invocations.dir/fig04_invocations.cc.o"
  "CMakeFiles/fig04_invocations.dir/fig04_invocations.cc.o.d"
  "fig04_invocations"
  "fig04_invocations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_invocations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
