# Empty dependencies file for fig04_invocations.
# This may be replaced when dependencies are built.
