file(REMOVE_RECURSE
  "CMakeFiles/fig22_model_size.dir/fig22_model_size.cc.o"
  "CMakeFiles/fig22_model_size.dir/fig22_model_size.cc.o.d"
  "fig22_model_size"
  "fig22_model_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_model_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
