# Empty dependencies file for fig22_model_size.
# This may be replaced when dependencies are built.
