file(REMOVE_RECURSE
  "CMakeFiles/fig14_qps_sweep.dir/fig14_qps_sweep.cc.o"
  "CMakeFiles/fig14_qps_sweep.dir/fig14_qps_sweep.cc.o.d"
  "fig14_qps_sweep"
  "fig14_qps_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_qps_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
