# Empty compiler generated dependencies file for fig09_context_growth.
# This may be replaced when dependencies are built.
