file(REMOVE_RECURSE
  "CMakeFiles/fig09_context_growth.dir/fig09_context_growth.cc.o"
  "CMakeFiles/fig09_context_growth.dir/fig09_context_growth.cc.o.d"
  "fig09_context_growth"
  "fig09_context_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_context_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
