file(REMOVE_RECURSE
  "CMakeFiles/ext_sustainability.dir/ext_sustainability.cc.o"
  "CMakeFiles/ext_sustainability.dir/ext_sustainability.cc.o.d"
  "ext_sustainability"
  "ext_sustainability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sustainability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
