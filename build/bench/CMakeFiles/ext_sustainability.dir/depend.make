# Empty dependencies file for ext_sustainability.
# This may be replaced when dependencies are built.
