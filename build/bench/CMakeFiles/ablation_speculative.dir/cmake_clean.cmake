file(REMOVE_RECURSE
  "CMakeFiles/ablation_speculative.dir/ablation_speculative.cc.o"
  "CMakeFiles/ablation_speculative.dir/ablation_speculative.cc.o.d"
  "ablation_speculative"
  "ablation_speculative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
