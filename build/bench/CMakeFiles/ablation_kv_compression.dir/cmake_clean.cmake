file(REMOVE_RECURSE
  "CMakeFiles/ablation_kv_compression.dir/ablation_kv_compression.cc.o"
  "CMakeFiles/ablation_kv_compression.dir/ablation_kv_compression.cc.o.d"
  "ablation_kv_compression"
  "ablation_kv_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kv_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
