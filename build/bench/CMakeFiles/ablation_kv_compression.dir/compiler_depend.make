# Empty compiler generated dependencies file for ablation_kv_compression.
# This may be replaced when dependencies are built.
