file(REMOVE_RECURSE
  "CMakeFiles/ext_hardware.dir/ext_hardware.cc.o"
  "CMakeFiles/ext_hardware.dir/ext_hardware.cc.o.d"
  "ext_hardware"
  "ext_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
