# Empty dependencies file for ext_hardware.
# This may be replaced when dependencies are built.
