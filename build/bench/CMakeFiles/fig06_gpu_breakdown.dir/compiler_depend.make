# Empty compiler generated dependencies file for fig06_gpu_breakdown.
# This may be replaced when dependencies are built.
