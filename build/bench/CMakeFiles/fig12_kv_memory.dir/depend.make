# Empty dependencies file for fig12_kv_memory.
# This may be replaced when dependencies are built.
