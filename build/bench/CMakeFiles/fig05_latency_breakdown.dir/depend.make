# Empty dependencies file for fig05_latency_breakdown.
# This may be replaced when dependencies are built.
