# Empty compiler generated dependencies file for fig16_serving_kv.
# This may be replaced when dependencies are built.
