file(REMOVE_RECURSE
  "CMakeFiles/fig16_serving_kv.dir/fig16_serving_kv.cc.o"
  "CMakeFiles/fig16_serving_kv.dir/fig16_serving_kv.cc.o.d"
  "fig16_serving_kv"
  "fig16_serving_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_serving_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
