file(REMOVE_RECURSE
  "CMakeFiles/fig10_prefix_prefill.dir/fig10_prefix_prefill.cc.o"
  "CMakeFiles/fig10_prefix_prefill.dir/fig10_prefix_prefill.cc.o.d"
  "fig10_prefix_prefill"
  "fig10_prefix_prefill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_prefix_prefill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
