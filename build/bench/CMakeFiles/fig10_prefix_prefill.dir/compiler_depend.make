# Empty compiler generated dependencies file for fig10_prefix_prefill.
# This may be replaced when dependencies are built.
