# Empty dependencies file for fig13_serving_concurrency.
# This may be replaced when dependencies are built.
