file(REMOVE_RECURSE
  "CMakeFiles/fig13_serving_concurrency.dir/fig13_serving_concurrency.cc.o"
  "CMakeFiles/fig13_serving_concurrency.dir/fig13_serving_concurrency.cc.o.d"
  "fig13_serving_concurrency"
  "fig13_serving_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_serving_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
