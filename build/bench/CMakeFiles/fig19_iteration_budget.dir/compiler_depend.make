# Empty compiler generated dependencies file for fig19_iteration_budget.
# This may be replaced when dependencies are built.
