file(REMOVE_RECURSE
  "CMakeFiles/fig19_iteration_budget.dir/fig19_iteration_budget.cc.o"
  "CMakeFiles/fig19_iteration_budget.dir/fig19_iteration_budget.cc.o.d"
  "fig19_iteration_budget"
  "fig19_iteration_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_iteration_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
