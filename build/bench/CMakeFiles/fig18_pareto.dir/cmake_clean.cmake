file(REMOVE_RECURSE
  "CMakeFiles/fig18_pareto.dir/fig18_pareto.cc.o"
  "CMakeFiles/fig18_pareto.dir/fig18_pareto.cc.o.d"
  "fig18_pareto"
  "fig18_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
