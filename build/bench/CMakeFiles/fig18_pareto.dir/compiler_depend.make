# Empty compiler generated dependencies file for fig18_pareto.
# This may be replaced when dependencies are built.
