# Empty dependencies file for table3_energy_power.
# This may be replaced when dependencies are built.
