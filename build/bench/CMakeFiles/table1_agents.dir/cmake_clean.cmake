file(REMOVE_RECURSE
  "CMakeFiles/table1_agents.dir/table1_agents.cc.o"
  "CMakeFiles/table1_agents.dir/table1_agents.cc.o.d"
  "table1_agents"
  "table1_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
