# Empty compiler generated dependencies file for table1_agents.
# This may be replaced when dependencies are built.
