file(REMOVE_RECURSE
  "CMakeFiles/fig20_fewshot.dir/fig20_fewshot.cc.o"
  "CMakeFiles/fig20_fewshot.dir/fig20_fewshot.cc.o.d"
  "fig20_fewshot"
  "fig20_fewshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_fewshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
