# Empty dependencies file for fig20_fewshot.
# This may be replaced when dependencies are built.
