# Empty dependencies file for fig08_token_breakdown.
# This may be replaced when dependencies are built.
