file(REMOVE_RECURSE
  "CMakeFiles/ablation_disagg.dir/ablation_disagg.cc.o"
  "CMakeFiles/ablation_disagg.dir/ablation_disagg.cc.o.d"
  "ablation_disagg"
  "ablation_disagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
