# Empty dependencies file for ablation_disagg.
# This may be replaced when dependencies are built.
