# Empty compiler generated dependencies file for fig07_latency_distribution.
# This may be replaced when dependencies are built.
