# Empty dependencies file for ext_ttft.
# This may be replaced when dependencies are built.
