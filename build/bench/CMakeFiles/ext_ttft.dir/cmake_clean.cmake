file(REMOVE_RECURSE
  "CMakeFiles/ext_ttft.dir/ext_ttft.cc.o"
  "CMakeFiles/ext_ttft.dir/ext_ttft.cc.o.d"
  "ext_ttft"
  "ext_ttft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ttft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
