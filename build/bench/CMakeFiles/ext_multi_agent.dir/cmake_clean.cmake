file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_agent.dir/ext_multi_agent.cc.o"
  "CMakeFiles/ext_multi_agent.dir/ext_multi_agent.cc.o.d"
  "ext_multi_agent"
  "ext_multi_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
