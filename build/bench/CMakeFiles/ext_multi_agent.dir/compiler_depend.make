# Empty compiler generated dependencies file for ext_multi_agent.
# This may be replaced when dependencies are built.
