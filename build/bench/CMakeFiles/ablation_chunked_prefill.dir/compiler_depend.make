# Empty compiler generated dependencies file for ablation_chunked_prefill.
# This may be replaced when dependencies are built.
