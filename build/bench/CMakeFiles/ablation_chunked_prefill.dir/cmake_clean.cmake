file(REMOVE_RECURSE
  "CMakeFiles/ablation_chunked_prefill.dir/ablation_chunked_prefill.cc.o"
  "CMakeFiles/ablation_chunked_prefill.dir/ablation_chunked_prefill.cc.o.d"
  "ablation_chunked_prefill"
  "ablation_chunked_prefill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunked_prefill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
