# Empty compiler generated dependencies file for fig11_prefix_latency.
# This may be replaced when dependencies are built.
