file(REMOVE_RECURSE
  "CMakeFiles/ext_static_scaling.dir/ext_static_scaling.cc.o"
  "CMakeFiles/ext_static_scaling.dir/ext_static_scaling.cc.o.d"
  "ext_static_scaling"
  "ext_static_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_static_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
