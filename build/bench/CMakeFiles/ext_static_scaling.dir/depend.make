# Empty dependencies file for ext_static_scaling.
# This may be replaced when dependencies are built.
