file(REMOVE_RECURSE
  "CMakeFiles/ext_multiturn_chat.dir/ext_multiturn_chat.cc.o"
  "CMakeFiles/ext_multiturn_chat.dir/ext_multiturn_chat.cc.o.d"
  "ext_multiturn_chat"
  "ext_multiturn_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiturn_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
