# Empty compiler generated dependencies file for ext_multiturn_chat.
# This may be replaced when dependencies are built.
