file(REMOVE_RECURSE
  "CMakeFiles/fig17_kv_capacity.dir/fig17_kv_capacity.cc.o"
  "CMakeFiles/fig17_kv_capacity.dir/fig17_kv_capacity.cc.o.d"
  "fig17_kv_capacity"
  "fig17_kv_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_kv_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
