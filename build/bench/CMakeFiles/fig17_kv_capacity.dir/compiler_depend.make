# Empty compiler generated dependencies file for fig17_kv_capacity.
# This may be replaced when dependencies are built.
