# Empty compiler generated dependencies file for fig15_prefix_throughput.
# This may be replaced when dependencies are built.
