# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/agents_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/engine_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
