
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/agentsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/agentsim_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/agentsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/agentsim_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/agentsim_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/agentsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/agentsim_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/agentsim_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/agentsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/agentsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
