/**
 * @file
 * Fig 6 — GPU runtime breakdown (prefill / decode / idle) per request
 * window and the resulting average GPU utilization.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig06_gpu_breakdown");

    core::Table t("Fig 6: GPU runtime breakdown and utilization");
    t.header({"Benchmark", "Agent", "Prefill %", "Decode %", "Idle %",
              "GPU util %", "SM compute %"});

    for (const auto &[agent, bench] : supportedPairs()) {
        auto r_cfg = defaultProbe(agent, bench);
        telemetry.apply(r_cfg);
        const auto r = core::runProbe(r_cfg);
        double prefill = 0.0;
        double decode = 0.0;
        double window = 0.0;
        double core_active = 0.0;
        for (const auto &req : r.requests) {
            prefill += req.gpuPrefillSeconds;
            decode += req.gpuDecodeSeconds;
            window += req.result.e2eSeconds;
            core_active += req.gpuCoreActiveSeconds;
        }
        const double idle = window - prefill - decode;
        // "GPU util" is DCGM-style kernel-busy time; "SM compute" is
        // the roofline share actually limited by the ALUs —
        // memory-bound decode keeps it tiny.
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtPercent(prefill / window),
               core::fmtPercent(decode / window),
               core::fmtPercent(idle / window),
               core::fmtPercent((prefill + decode) / window),
               core::fmtPercent(core_active / window)});
    }
    t.print();

    std::printf("\nPaper reference: tool-augmented agents idle the GPU "
                "up to 54.5%% of the time; decode dominates the busy "
                "share (74.1%% vs 4.7%% prefill, caching on).\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
