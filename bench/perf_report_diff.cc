/**
 * @file
 * Regression gate over two BENCH_agentsim.json perf reports.
 *
 *   perf_report_diff base.json candidate.json [--threshold 0.05]
 *                    [--floor <metric>=<min>]...
 *
 * Prints a per-metric delta table and exits non-zero when any metric
 * regressed beyond the threshold (relative change in the metric's
 * "worse" direction — see core::metricDirection). Metrics present in
 * only one report are listed but never fail the gate, so reports can
 * gain metrics without breaking CI.
 *
 * --floor adds an absolute lower bound on a candidate metric,
 * independent of the base report and of the metric's direction class.
 * This is how host-noisy Informational metrics (sim_events_per_second
 * and friends — too jittery for a relative gate) still get a
 * catastrophe gate: the simulator must clear an events/s floor the
 * slowest supported CI host can sustain. A floored metric missing
 * from the candidate report fails the gate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/perf_report.hh"
#include "core/table.hh"

namespace
{

using namespace agentsim;

const char *
directionName(core::MetricDirection d)
{
    switch (d) {
      case core::MetricDirection::LowerIsBetter:
        return "lower";
      case core::MetricDirection::HigherIsBetter:
        return "higher";
      case core::MetricDirection::Informational:
        return "info";
    }
    return "?";
}

const char *
verdict(const core::MetricDelta &d)
{
    if (d.regressed)
        return "REGRESSED";
    if (d.improved)
        return "improved";
    return "ok";
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <base.json> <candidate.json> "
                 "[--threshold <frac>] "
                 "[--floor <metric>=<min>]...\n",
                 argv0);
    return 2;
}

/** One --floor metric=min spec; parse failure returns nullopt. */
std::optional<std::pair<std::string, double>>
parseFloor(const char *spec)
{
    const char *eq = std::strchr(spec, '=');
    if (eq == nullptr || eq == spec)
        return std::nullopt;
    char *end = nullptr;
    const double value = std::strtod(eq + 1, &end);
    if (end == eq + 1 || *end != '\0')
        return std::nullopt;
    return std::make_pair(std::string(spec, eq), value);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string base_path;
    std::string cand_path;
    double threshold = 0.05;
    std::vector<std::pair<std::string, double>> floors;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            threshold = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--floor") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            const auto floor = parseFloor(argv[++i]);
            if (!floor) {
                std::fprintf(stderr,
                             "error: --floor wants <metric>=<min>, "
                             "got \"%s\"\n",
                             argv[i]);
                return 2;
            }
            floors.push_back(*floor);
        } else if (base_path.empty()) {
            base_path = argv[i];
        } else if (cand_path.empty()) {
            cand_path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (base_path.empty() || cand_path.empty())
        return usage(argv[0]);

    const auto base = core::PerfReport::load(base_path);
    if (!base) {
        std::fprintf(stderr, "error: cannot load base report %s\n",
                     base_path.c_str());
        return 2;
    }
    const auto cand = core::PerfReport::load(cand_path);
    if (!cand) {
        std::fprintf(stderr,
                     "error: cannot load candidate report %s\n",
                     cand_path.c_str());
        return 2;
    }

    const core::CompareResult cmp =
        core::compareReports(*base, *cand, threshold);

    std::printf("perf diff: %s (%s) vs %s (%s), threshold %.1f%%\n",
                base_path.c_str(), base->generator().c_str(),
                cand_path.c_str(), cand->generator().c_str(),
                threshold * 100.0);

    core::Table table("perf report diff");
    table.header({"metric", "base", "candidate", "delta%", "better",
                  "verdict"});
    int regressions = 0;
    for (const auto &d : cmp.deltas) {
        if (d.regressed)
            ++regressions;
        table.row({d.name, core::fmtDouble(d.base, 6),
                   core::fmtDouble(d.candidate, 6),
                   core::fmtDouble(d.relative * 100.0, 2),
                   directionName(d.direction), verdict(d)});
    }
    table.print();

    for (const auto &name : cmp.missing)
        std::printf("note: %s present in only one report; skipped\n",
                    name.c_str());

    int floor_failures = 0;
    for (const auto &[name, min] : floors) {
        const auto value = cand->get(name);
        if (!value) {
            std::fprintf(stderr,
                         "FLOOR FAIL: %s missing from candidate "
                         "report (floor %g)\n",
                         name.c_str(), min);
            ++floor_failures;
        } else if (*value < min) {
            std::fprintf(stderr,
                         "FLOOR FAIL: %s = %g below floor %g\n",
                         name.c_str(), *value, min);
            ++floor_failures;
        } else {
            std::printf("floor ok: %s = %g >= %g\n", name.c_str(),
                        *value, min);
        }
    }
    if (floor_failures > 0) {
        std::printf("FAIL: %d metric floor(s) violated\n",
                    floor_failures);
        return 1;
    }

    if (cmp.hasRegression) {
        std::printf("FAIL: %d metric(s) regressed beyond %.1f%%\n",
                    regressions, threshold * 100.0);
        return 1;
    }
    std::printf("PASS: no regressions beyond %.1f%% (%zu compared)\n",
                threshold * 100.0, cmp.deltas.size());
    return 0;
}
