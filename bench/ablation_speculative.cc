/**
 * @file
 * Ablation (keytakeaway #1) — speculative tool invocation: a
 * predicted tool call launches concurrently with each reasoning LLM
 * call, hiding tool latency when the prediction is right and wasting
 * a call when it is wrong. The win tracks the tool's latency share:
 * large on HotpotQA (1.2 s Wikipedia calls), negligible on WebShop
 * (20 ms local navigation).
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_speculative");

    core::Table t("Ablation: speculative tool invocation "
                  "(ReAct, single request at a time)");
    t.header({"Benchmark", "Speculation", "Mean e2e", "Tool calls",
              "Accuracy", "Latency saved"});

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::WebShop}) {
        double base_latency = 0.0;
        for (bool speculative : {false, true}) {
            auto cfg = defaultProbe(AgentKind::ReAct, bench);
            cfg.agentConfig.speculativeTools = speculative;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            const double latency = r.e2eSeconds().mean();
            if (!speculative)
                base_latency = latency;
            t.row({std::string(workload::benchmarkName(bench)),
                   speculative ? "on" : "off",
                   core::fmtSeconds(latency),
                   core::fmtDouble(r.meanToolCalls(), 1),
                   core::fmtPercent(r.accuracy()),
                   speculative
                       ? core::fmtPercent(1.0 - latency / base_latency)
                       : std::string("-")});
        }
    }
    t.print();

    std::printf("\nDesign note: realizes the paper's proposal of "
                "\"speculative tool invocation ... to overlap LLM "
                "inference with tool execution\"; the extra tool "
                "calls are the price of wrong predictions.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
