/**
 * @file
 * Chaos/SLO sweep — what unreliable infrastructure costs an agentic
 * serving cluster. Sweeps the per-node crash rate (and, separately,
 * tool fault rates) over a mixed agent + chatbot workload and reports
 * tail latency, goodput, the retry/failover traffic the client layer
 * generates to survive, and the online SLO monitor's view: TTFT
 * attainment and the burn-rate alerts the injected crashes trip.
 *
 * Every crash cold-starts the node's prefix cache and reroutes its
 * in-flight rollouts, so the p99 penalty is much larger than the raw
 * downtime fraction suggests: retried requests pay queueing, backoff
 * and a full re-prefill on a cache-cold node.
 *
 *   chaos_slo [--trace out.json] [--metrics out.prom]
 *             [--report out.json]
 *
 * Optional telemetry captures the *last* crash-sweep point — the most
 * hostile one: the Chrome trace holds crash/restart/failover/shed,
 * cancellation and slo_alert instants across all three nodes, the
 * metrics file the cluster-wide retry/failover/cancel counters plus
 * the agentsim_slo_* families. --report accumulates every sweep
 * point's goodput/p99/alert-count into a perf report.
 */

#include <cstdio>
#include <iterator>

#include "common.hh"
#include "core/cluster.hh"
#include "sim/strfmt.hh"
#include "telemetry/slo.hh"

namespace
{

using namespace benchutil;

core::ClusterConfig
baseConfig()
{
    core::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;

    core::WorkloadSpec react_hotpot;
    react_hotpot.agent = AgentKind::ReAct;
    react_hotpot.bench = Benchmark::HotpotQA;
    cfg.mix.push_back(react_hotpot);

    core::WorkloadSpec reflexion_shop;
    reflexion_shop.agent = AgentKind::Reflexion;
    reflexion_shop.bench = Benchmark::WebShop;
    cfg.mix.push_back(reflexion_shop);

    core::WorkloadSpec chat;
    chat.chatbot = true;
    cfg.mix.push_back(chat);

    cfg.qps = 3.0;
    cfg.numRequests = 150;
    cfg.seed = kSeed;
    return cfg;
}

/** SLO targets for the chaos sweep, calibrated so the fault-free run
 *  holds its budget and injected node crashes burn through it. */
telemetry::SloConfig
sloConfig()
{
    telemetry::SloConfig slo;
    slo.ttftTargetSeconds = 15.0;
    slo.tbtTargetSeconds = 0.5;
    slo.e2eTargetSeconds = 120.0;
    slo.windowSeconds = 20.0;
    return slo;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("chaos_slo");

    // --- Sweep 1: node crash rate vs tail latency / goodput. -------
    core::Table crash_table(
        "Chaos: node crash rate vs SLO (3 nodes, mixed workload)");
    crash_table.header({"Node MTBF", "Crashes", "Retries", "Failovers",
                        "Goodput", "p50", "p99", "TTFT attain",
                        "SLO alerts"});

    const double mtbfs[] = {0.0, 120.0, 60.0, 30.0};
    std::int64_t total_alerts = 0;
    for (double mtbf : mtbfs) {
        auto cfg = baseConfig();
        cfg.faults.nodeMtbfSeconds = mtbf;
        cfg.faults.nodeRestartMeanSeconds = 5.0;
        telemetry::SloTracker slo(sloConfig());
        cfg.slo = &slo;
        // Telemetry files capture the most hostile sweep point.
        if (mtbf == mtbfs[std::size(mtbfs) - 1])
            telemetry.apply(cfg);
        const auto r = core::runCluster(cfg);
        total_alerts += r.sloAlerts;
        crash_table.row(
            {mtbf > 0 ? core::fmtSeconds(mtbf) : "off",
             core::fmtCount(static_cast<double>(r.faultStats.crashes)),
             core::fmtCount(r.retries), core::fmtCount(r.failovers),
             core::fmtPercent(r.goodputFraction()),
             core::fmtSeconds(r.p50()), core::fmtSeconds(r.p99()),
             core::fmtPercent(
                 slo.attainment(telemetry::SloMetric::Ttft)),
             core::fmtCount(static_cast<double>(r.sloAlerts))});
        if (telemetry.reportRequested()) {
            const std::string prefix =
                mtbf > 0 ? sim::strfmt("crash_mtbf_%.0fs", mtbf)
                         : std::string("crash_off");
            auto &rep = telemetry.report();
            rep.set(prefix + "_goodput", r.goodputFraction());
            rep.set(prefix + "_p99_seconds", r.p99());
            rep.set(prefix + "_ttft_attainment",
                    slo.attainment(telemetry::SloMetric::Ttft));
            rep.set(prefix + "_slo_alerts",
                    static_cast<double>(r.sloAlerts));
        }
    }
    crash_table.print();
    std::printf("SLO monitor: %lld burn-rate alert(s) fired across "
                "the crash sweep (targets: TTFT %.0fs, TBT %.1fs, "
                "E2E %.0fs at %.0f%% attainment).\n\n",
                static_cast<long long>(total_alerts),
                sloConfig().ttftTargetSeconds,
                sloConfig().tbtTargetSeconds,
                sloConfig().e2eTargetSeconds,
                sloConfig().attainmentTarget * 100.0);

    // --- Sweep 2: tool fault rate vs rollout latency. --------------
    core::Table tool_table(
        "Chaos: tool fault rate vs rollout latency (no node faults)");
    tool_table.header(
        {"Tool failure prob", "Slowdown prob", "Goodput", "p50", "p99"});
    for (double prob : {0.0, 0.1, 0.3}) {
        auto cfg = baseConfig();
        cfg.faults.toolFailureProb = prob;
        cfg.faults.toolSlowdownProb = prob;
        const auto r = core::runCluster(cfg);
        tool_table.row({core::fmtPercent(prob),
                        core::fmtPercent(prob),
                        core::fmtPercent(r.goodputFraction()),
                        core::fmtSeconds(r.p50()),
                        core::fmtSeconds(r.p99())});
    }
    tool_table.print();

    std::printf(
        "\nDesign note: agent rollouts amplify infrastructure "
        "faults — one node crash cancels every in-flight iteration "
        "on it, and each retried rollout re-prefills its whole "
        "accumulated context on a cache-cold node. Goodput degrades "
        "slowly (retries absorb the failures) while p99 degrades "
        "fast (backoff + re-prefill + queueing on the survivors); "
        "the burn-rate monitor turns that tail damage into pageable "
        "alerts long before goodput moves.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
