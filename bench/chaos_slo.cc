/**
 * @file
 * Chaos/SLO sweep — what unreliable infrastructure costs an agentic
 * serving cluster. Sweeps the per-node crash rate (and, separately,
 * tool fault rates) over a mixed agent + chatbot workload and reports
 * tail latency, goodput and the retry/failover traffic the client
 * layer generates to survive.
 *
 * Every crash cold-starts the node's prefix cache and reroutes its
 * in-flight rollouts, so the p99 penalty is much larger than the raw
 * downtime fraction suggests: retried requests pay queueing, backoff
 * and a full re-prefill on a cache-cold node.
 *
 *   chaos_slo [--trace out.json] [--metrics out.prom]
 *
 * Optional telemetry captures the *last* crash-sweep point — the most
 * hostile one: the Chrome trace holds crash/restart/failover/shed and
 * cancellation instants across all three nodes, the metrics file the
 * cluster-wide retry/failover/cancel counters.
 */

#include <cstdio>
#include <cstring>
#include <iterator>

#include "common.hh"
#include "core/cluster.hh"

namespace
{

using namespace benchutil;

core::ClusterConfig
baseConfig()
{
    core::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;

    core::WorkloadSpec react_hotpot;
    react_hotpot.agent = AgentKind::ReAct;
    react_hotpot.bench = Benchmark::HotpotQA;
    cfg.mix.push_back(react_hotpot);

    core::WorkloadSpec reflexion_shop;
    reflexion_shop.agent = AgentKind::Reflexion;
    reflexion_shop.bench = Benchmark::WebShop;
    cfg.mix.push_back(reflexion_shop);

    core::WorkloadSpec chat;
    chat.chatbot = true;
    cfg.mix.push_back(chat);

    cfg.qps = 3.0;
    cfg.numRequests = 150;
    cfg.seed = kSeed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string metrics_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            trace_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--metrics") == 0)
            metrics_path = argv[i + 1];
    }
    telemetry::TraceSink trace;
    telemetry::MetricsRegistry metrics;

    // --- Sweep 1: node crash rate vs tail latency / goodput. -------
    core::Table crash_table(
        "Chaos: node crash rate vs SLO (3 nodes, mixed workload)");
    crash_table.header({"Node MTBF", "Crashes", "Retries", "Failovers",
                        "Goodput", "p50", "p99"});

    const double mtbfs[] = {0.0, 120.0, 60.0, 30.0};
    for (double mtbf : mtbfs) {
        auto cfg = baseConfig();
        cfg.faults.nodeMtbfSeconds = mtbf;
        cfg.faults.nodeRestartMeanSeconds = 5.0;
        if (mtbf == mtbfs[std::size(mtbfs) - 1]) {
            if (!trace_path.empty()) {
                trace.clear();
                cfg.traceSink = &trace;
            }
            if (!metrics_path.empty())
                cfg.metrics = &metrics;
        }
        const auto r = core::runCluster(cfg);
        crash_table.row(
            {mtbf > 0 ? core::fmtSeconds(mtbf) : "off",
             core::fmtCount(static_cast<double>(r.faultStats.crashes)),
             core::fmtCount(r.retries), core::fmtCount(r.failovers),
             core::fmtPercent(r.goodputFraction()),
             core::fmtSeconds(r.p50()), core::fmtSeconds(r.p99())});
    }
    crash_table.print();

    // --- Sweep 2: tool fault rate vs rollout latency. --------------
    core::Table tool_table(
        "Chaos: tool fault rate vs rollout latency (no node faults)");
    tool_table.header(
        {"Tool failure prob", "Slowdown prob", "Goodput", "p50", "p99"});
    for (double prob : {0.0, 0.1, 0.3}) {
        auto cfg = baseConfig();
        cfg.faults.toolFailureProb = prob;
        cfg.faults.toolSlowdownProb = prob;
        const auto r = core::runCluster(cfg);
        tool_table.row({core::fmtPercent(prob),
                        core::fmtPercent(prob),
                        core::fmtPercent(r.goodputFraction()),
                        core::fmtSeconds(r.p50()),
                        core::fmtSeconds(r.p99())});
    }
    tool_table.print();

    if (!trace_path.empty()) {
        if (!trace.writeJson(trace_path)) {
            std::fprintf(stderr, "error: failed to write trace to %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("telemetry: wrote Chrome trace to %s\n",
                    trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        if (!telemetry::writeTextFile(metrics_path,
                                      metrics.renderPrometheus())) {
            std::fprintf(stderr,
                         "error: failed to write metrics to %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::printf("telemetry: wrote Prometheus metrics to %s\n",
                    metrics_path.c_str());
    }

    std::printf(
        "\nDesign note: agent rollouts amplify infrastructure "
        "faults — one node crash cancels every in-flight iteration "
        "on it, and each retried rollout re-prefills its whole "
        "accumulated context on a cache-cold node. Goodput degrades "
        "slowly (retries absorb the failures) while p99 degrades "
        "fast (backoff + re-prefill + queueing on the survivors).\n");
    return 0;
}
