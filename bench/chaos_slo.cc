/**
 * @file
 * Chaos/SLO sweep — what unreliable infrastructure costs an agentic
 * serving cluster. Sweeps the per-node crash rate (and, separately,
 * tool fault rates) over a mixed agent + chatbot workload and reports
 * tail latency, goodput, the retry/failover traffic the client layer
 * generates to survive, and the online SLO monitor's view: TTFT
 * attainment and the burn-rate alerts the injected crashes trip.
 *
 * Every crash cold-starts the node's prefix cache and reroutes its
 * in-flight rollouts, so the p99 penalty is much larger than the raw
 * downtime fraction suggests: retried requests pay queueing, backoff
 * and a full re-prefill on a cache-cold node.
 *
 *   chaos_slo [--trace out.json] [--metrics out.prom]
 *             [--report out.json] [--flight-record]
 *             [--incident-dir dir] [--smoke]
 *
 * Optional telemetry captures the *last* instrumented run — the
 * engine-stall scenario: the Chrome trace holds crash/restart/
 * failover/shed, cancellation and slo_alert instants across all three
 * nodes, the metrics file the cluster-wide retry/failover/cancel
 * counters plus the agentsim_slo_* families. --report accumulates
 * every sweep point's goodput/p99/alert-count into a perf report.
 *
 * --flight-record arms the flight recorder for the stall scenario:
 * the injected engine stalls burn the TBT budget, the SLO alert trips
 * the recorder, and an incident bundle lands under --incident-dir
 * (default "incidents") whose retroactive window contains the stall
 * and whose blame table indicts it (decode/queue-dominated). The
 * binary exits non-zero if recording was requested and no bundle was
 * produced. --smoke skips the crash/tool sweeps and shrinks the stall
 * scenario for CI (scripts/check_trace.py validates the bundle).
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "common.hh"
#include "core/cluster.hh"
#include "sim/strfmt.hh"
#include "telemetry/slo.hh"

namespace
{

using namespace benchutil;

core::ClusterConfig
baseConfig()
{
    core::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;

    core::WorkloadSpec react_hotpot;
    react_hotpot.agent = AgentKind::ReAct;
    react_hotpot.bench = Benchmark::HotpotQA;
    cfg.mix.push_back(react_hotpot);

    core::WorkloadSpec reflexion_shop;
    reflexion_shop.agent = AgentKind::Reflexion;
    reflexion_shop.bench = Benchmark::WebShop;
    cfg.mix.push_back(reflexion_shop);

    core::WorkloadSpec chat;
    chat.chatbot = true;
    cfg.mix.push_back(chat);

    cfg.qps = 3.0;
    cfg.numRequests = 150;
    cfg.seed = kSeed;
    return cfg;
}

/** SLO targets for the chaos sweep, calibrated so the fault-free run
 *  holds its budget and injected node crashes burn through it. */
telemetry::SloConfig
sloConfig()
{
    telemetry::SloConfig slo;
    slo.ttftTargetSeconds = 15.0;
    slo.tbtTargetSeconds = 0.5;
    slo.e2eTargetSeconds = 120.0;
    slo.windowSeconds = 20.0;
    return slo;
}

/** Engine-stall scenario: no crashes, but multi-second driver stalls
 *  that freeze prefill and decode — the flight recorder's
 *  demonstration workload. */
core::ClusterConfig
stallConfig(bool smoke)
{
    auto cfg = baseConfig();
    cfg.numRequests = smoke ? 60 : 150;
    cfg.faults.stallMtbfSeconds = 15.0;
    cfg.faults.stallMeanSeconds = 10.0;
    return cfg;
}

/** SLO targets for the stall scenario, calibrated against the
 *  per-LLM-call latency profile of the fault-free mixed workload
 *  (TTFT p99 ~3.5s, E2E p95 ~9s) so a multi-second engine stall
 *  burns the budget and trips the recorder. */
telemetry::SloConfig
stallSloConfig()
{
    telemetry::SloConfig slo;
    slo.ttftTargetSeconds = 2.0;
    slo.tbtTargetSeconds = 0.25;
    slo.e2eTargetSeconds = 15.0;
    slo.windowSeconds = 10.0;
    return slo;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("chaos_slo");

    if (!smoke) {
    // --- Sweep 1: node crash rate vs tail latency / goodput. -------
    core::Table crash_table(
        "Chaos: node crash rate vs SLO (3 nodes, mixed workload)");
    crash_table.header({"Node MTBF", "Crashes", "Retries", "Failovers",
                        "Goodput", "p50", "p99", "TTFT attain",
                        "SLO alerts"});

    const double mtbfs[] = {0.0, 120.0, 60.0, 30.0};
    std::int64_t total_alerts = 0;
    for (double mtbf : mtbfs) {
        auto cfg = baseConfig();
        cfg.faults.nodeMtbfSeconds = mtbf;
        cfg.faults.nodeRestartMeanSeconds = 5.0;
        telemetry::SloTracker slo(sloConfig());
        cfg.slo = &slo;
        // Telemetry files capture the most hostile sweep point.
        if (mtbf == mtbfs[std::size(mtbfs) - 1])
            telemetry.apply(cfg);
        const auto r = core::runCluster(cfg);
        total_alerts += r.sloAlerts;
        crash_table.row(
            {mtbf > 0 ? core::fmtSeconds(mtbf) : "off",
             core::fmtCount(static_cast<double>(r.faultStats.crashes)),
             core::fmtCount(r.retries), core::fmtCount(r.failovers),
             core::fmtPercent(r.goodputFraction()),
             core::fmtSeconds(r.p50()), core::fmtSeconds(r.p99()),
             core::fmtPercent(
                 slo.attainment(telemetry::SloMetric::Ttft)),
             core::fmtCount(static_cast<double>(r.sloAlerts))});
        if (telemetry.reportRequested()) {
            const std::string prefix =
                mtbf > 0 ? sim::strfmt("crash_mtbf_%.0fs", mtbf)
                         : std::string("crash_off");
            auto &rep = telemetry.report();
            rep.set(prefix + "_goodput", r.goodputFraction());
            rep.set(prefix + "_p99_seconds", r.p99());
            rep.set(prefix + "_ttft_attainment",
                    slo.attainment(telemetry::SloMetric::Ttft));
            rep.set(prefix + "_slo_alerts",
                    static_cast<double>(r.sloAlerts));
        }
    }
    crash_table.print();
    std::printf("SLO monitor: %lld burn-rate alert(s) fired across "
                "the crash sweep (targets: TTFT %.0fs, TBT %.1fs, "
                "E2E %.0fs at %.0f%% attainment).\n\n",
                static_cast<long long>(total_alerts),
                sloConfig().ttftTargetSeconds,
                sloConfig().tbtTargetSeconds,
                sloConfig().e2eTargetSeconds,
                sloConfig().attainmentTarget * 100.0);

    // --- Sweep 2: tool fault rate vs rollout latency. --------------
    core::Table tool_table(
        "Chaos: tool fault rate vs rollout latency (no node faults)");
    tool_table.header(
        {"Tool failure prob", "Slowdown prob", "Goodput", "p50", "p99"});
    for (double prob : {0.0, 0.1, 0.3}) {
        auto cfg = baseConfig();
        cfg.faults.toolFailureProb = prob;
        cfg.faults.toolSlowdownProb = prob;
        const auto r = core::runCluster(cfg);
        tool_table.row({core::fmtPercent(prob),
                        core::fmtPercent(prob),
                        core::fmtPercent(r.goodputFraction()),
                        core::fmtSeconds(r.p50()),
                        core::fmtSeconds(r.p99())});
    }
    tool_table.print();

    std::printf(
        "\nDesign note: agent rollouts amplify infrastructure "
        "faults — one node crash cancels every in-flight iteration "
        "on it, and each retried rollout re-prefills its whole "
        "accumulated context on a cache-cold node. Goodput degrades "
        "slowly (retries absorb the failures) while p99 degrades "
        "fast (backoff + re-prefill + queueing on the survivors); "
        "the burn-rate monitor turns that tail damage into pageable "
        "alerts long before goodput moves.\n\n");
    } // !smoke

    // --- Scenario 3: engine stalls vs incident capture. ------------
    // Multi-second driver stalls freeze decode on one node at a time;
    // the TBT burn alert trips, and with --flight-record the recorder
    // dumps an incident bundle whose window contains the stall.
    {
        core::Table stall_table(
            "Chaos: engine stalls vs incident capture (no crashes)");
        stall_table.header({"Stall MTBF", "Stalls", "Stall secs",
                            "p50", "p99", "TBT attain", "SLO alerts",
                            "Incidents"});
        auto cfg = stallConfig(smoke);
        telemetry::SloTracker slo(stallSloConfig());
        cfg.slo = &slo;
        telemetry.apply(cfg);
        const auto r = core::runCluster(cfg);
        stall_table.row(
            {core::fmtSeconds(cfg.faults.stallMtbfSeconds),
             core::fmtCount(static_cast<double>(r.faultStats.stalls)),
             core::fmtSeconds(r.faultStats.stallSecondsInjected),
             core::fmtSeconds(r.p50()), core::fmtSeconds(r.p99()),
             core::fmtPercent(slo.attainment(telemetry::SloMetric::Tbt)),
             core::fmtCount(static_cast<double>(r.sloAlerts)),
             core::fmtCount(static_cast<double>(r.incidentBundles))});
        stall_table.print();
        if (telemetry.reportRequested()) {
            auto &rep = telemetry.report();
            rep.set("stall_p99_seconds", r.p99());
            rep.set("stall_tbt_attainment",
                    slo.attainment(telemetry::SloMetric::Tbt));
            rep.set("stall_slo_alerts",
                    static_cast<double>(r.sloAlerts));
        }

        if (telemetry.flightRecordRequested()) {
            const auto &rec = telemetry.session().recorder;
            std::printf("\nFlight recorder: %lld incident bundle(s), "
                        "%lld debounced, %lld over budget, %lld bytes "
                        "written.\n",
                        static_cast<long long>(rec.incidentsDumped()),
                        static_cast<long long>(rec.skippedDebounce()),
                        static_cast<long long>(rec.skippedBudget()),
                        static_cast<long long>(rec.bytesWritten()));
            for (const auto &path : rec.incidentPaths())
                std::printf("  %s\n", path.c_str());
        }
    }

    if (!telemetry.write())
        return 1;
    if (telemetry.flightRecordRequested()) {
        const auto &rec = telemetry.session().recorder;
        if (rec.incidentsDumped() == 0) {
            std::fprintf(stderr,
                         "error: --flight-record was given but the "
                         "stall scenario produced no incident bundle\n");
            return 1;
        }
        // The demonstration is a gate: some bundle's retroactive
        // window must actually contain an injected stall instant.
        bool stall_captured = false;
        for (const auto &path : rec.incidentPaths()) {
            std::ifstream in(std::filesystem::path(path) /
                             "trace.json");
            const std::string trace(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            if (trace.find("\"stall ") != std::string::npos) {
                stall_captured = true;
                break;
            }
        }
        if (!stall_captured) {
            std::fprintf(stderr,
                         "error: no incident bundle's window contains "
                         "an injected stall instant\n");
            return 1;
        }
    }
    return 0;
}
