/**
 * @file
 * Fig 16 — average and maximum KV-cache memory in ReAct serving, with
 * and without prefix caching, at the paper's fixed offered loads
 * (0.2 QPS HotpotQA, 0.1 QPS WebShop).
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig16_serving_kv");

    core::Table t("Fig 16: KV-cache memory in agent serving, with vs "
                  "without prefix caching");
    t.header({"Benchmark", "QPS", "Avg KV (off)", "Avg KV (on)",
              "Max KV (off)", "Max KV (on)", "Avg cut", "Max cut"});

    double avg_cut_total = 0.0;
    double max_cut_total = 0.0;
    int count = 0;

    struct Point
    {
        Benchmark bench;
        double qps;
    };
    for (const Point p : {Point{Benchmark::HotpotQA, 0.2},
                          Point{Benchmark::WebShop, 0.1}}) {
        const auto off = serveAt(p.qps, false, AgentKind::ReAct,
                                 p.bench, 80, false, 0, &telemetry);
        const auto on = serveAt(p.qps, false, AgentKind::ReAct,
                                p.bench, 80, true, 0, &telemetry);
        const double avg_cut = 1.0 - on.kvAvgBytes / off.kvAvgBytes;
        const double max_cut = 1.0 - on.kvMaxBytes / off.kvMaxBytes;
        avg_cut_total += avg_cut;
        max_cut_total += max_cut;
        ++count;
        t.row({std::string(workload::benchmarkName(p.bench)),
               core::fmtDouble(p.qps, 1),
               core::fmtEng(off.kvAvgBytes, "B"),
               core::fmtEng(on.kvAvgBytes, "B"),
               core::fmtEng(off.kvMaxBytes, "B"),
               core::fmtEng(on.kvMaxBytes, "B"),
               core::fmtPercent(avg_cut), core::fmtPercent(max_cut)});
    }
    t.print();

    std::printf("\nPrefix caching cuts serving KV memory: average "
                "-%.1f%% (paper: 51.7%%), maximum -%.1f%% "
                "(paper: 63.5%%).\n",
                100.0 * avg_cut_total / count,
                100.0 * max_cut_total / count);
    if (!telemetry.write())
        return 1;
    return 0;
}
