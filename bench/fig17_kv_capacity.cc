/**
 * @file
 * Fig 17 — maximum sustainable throughput, p95 latency and
 * prefix-cache hit rate as the GPU memory reserved for the KV cache
 * varies from 10% to 200% of the model weight size. Small pools
 * serialize request scheduling; mid-size pools admit batches but
 * thrash the prefix cache.
 *
 * Beyond the paper's single-tier sweep, each constrained pool is also
 * measured with the DRAM+NVMe spill hierarchy enabled (evicted blocks
 * demote instead of vanishing; agents park chains across tool calls).
 * The binary *gates* on the tiering win: at the 20% pool the tiered
 * run must recover at least 60% of the throughput the single-tier
 * baseline loses versus the 200% reference, else it exits non-zero.
 * (A fixed speedup ratio would not be a meaningful gate here: this
 * simulator's calibrated baseline cliff at 20% is ~-18%, far
 * shallower than the paper's -73.6%, so any ratio above ~1.2x would
 * require exceeding the unconstrained ceiling.)
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace benchutil;

struct PoolResult
{
    double fraction = 0.0;
    double peakQps = 0.0;
    double p95AtPeak = 0.0;
    double hitRate = 0.0;
    /** Tokens restored from the spill tiers at the peak point. */
    double restoredTokens = 0.0;
};

/** Max achieved QPS whose p95 stays within 2.5x the large-pool
 *  unloaded latency. */
PoolResult
measurePool(Benchmark bench, double fraction, double base_p95,
            const std::vector<double> &qps_points,
            TelemetryCli &telemetry, std::int64_t dram_blocks,
            std::int64_t nvme_blocks)
{
    const auto weight_bytes = llm::llama31_8b().weightBytes();
    const auto pool = static_cast<std::int64_t>(
        fraction * static_cast<double>(weight_bytes));
    PoolResult out;
    out.fraction = fraction;
    for (double qps : qps_points) {
        const auto r =
            serveAt(qps, false, AgentKind::ReAct, bench, 100, true,
                    pool, &telemetry, dram_blocks, nvme_blocks);
        if (r.p95() <= 2.5 * base_p95 &&
            r.throughputQps() > out.peakQps) {
            out.peakQps = r.throughputQps();
            out.p95AtPeak = r.p95();
            out.hitRate = r.cacheHitRate;
            out.restoredTokens = static_cast<double>(
                r.cacheStats.dram.restoredTokens +
                r.cacheStats.nvme.restoredTokens);
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig17_kv_capacity");

    // Spill-tier sizing: one weight-size worth of blocks in host DRAM
    // and twice that on NVMe (a few percent of typical host capacity).
    const auto model = llm::llama31_8b();
    const std::int64_t block_bytes =
        16 * model.kvBytesPerToken();
    const std::int64_t dram_blocks =
        static_cast<std::int64_t>(model.weightBytes()) / block_bytes;
    const std::int64_t nvme_blocks = 2 * dram_blocks;

    bool gate_ok = true;
    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::WebShop}) {
        const std::vector<double> qps_points =
            bench == Benchmark::HotpotQA
                ? std::vector<double>{0.125, 0.25, 0.5, 1.0, 1.5, 2.0}
                : std::vector<double>{0.125, 0.25, 0.5, 0.75, 1.0,
                                      1.25};
        // Unloaded reference latency on the full pool.
        const double base_p95 =
            serveAt(qps_points.front(), false, AgentKind::ReAct,
                    bench, 60, true, 0, &telemetry)
                .p95();

        core::Table t(
            "Fig 17: KV-pool capacity sensitivity — ReAct on " +
            std::string(workload::benchmarkName(bench)));
        t.header({"Pool (% of weights)", "Peak sustainable QPS",
                  "p95 at peak", "Hit rate", "vs 200% pool",
                  "Tiered QPS", "Tiered / base"});
        std::vector<PoolResult> results;
        std::vector<PoolResult> tiered;
        for (double frac : {0.10, 0.20, 0.30, 1.00, 2.00}) {
            results.push_back(measurePool(bench, frac, base_p95,
                                          qps_points, telemetry, 0,
                                          0));
            // The hierarchy only matters where the pool is
            // constrained; at >=100% it is idle by construction.
            if (frac < 1.0) {
                tiered.push_back(
                    measurePool(bench, frac, base_p95, qps_points,
                                telemetry, dram_blocks, nvme_blocks));
            }
        }
        const double reference = results.back().peakQps;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            const bool has_tiered = i < tiered.size();
            t.row({core::fmtPercent(r.fraction, 0),
                   core::fmtDouble(r.peakQps, 2),
                   core::fmtSeconds(r.p95AtPeak),
                   core::fmtPercent(r.hitRate),
                   core::fmtPercent(r.peakQps / reference - 1.0),
                   has_tiered ? core::fmtDouble(tiered[i].peakQps, 2)
                              : "—",
                   has_tiered && r.peakQps > 0.0
                       ? core::fmtDouble(tiered[i].peakQps / r.peakQps,
                                         2) + "x"
                       : "—"});
        }
        t.print();
        std::printf("Paper: -86.3%% at 10%%, -73.6%% at 20%%, and "
                    "-35%%/-18%% at 30%% (cache thrashing), relative "
                    "to the 200%% configuration.\n");

        // Gate: the hierarchy must flatten the 20%-pool cliff —
        // recover most of the throughput the constrained baseline
        // loses vs the 200% reference.
        const PoolResult &base20 = results[1];
        const PoolResult &tier20 = tiered[1];
        const double speedup = base20.peakQps > 0.0
                                   ? tier20.peakQps / base20.peakQps
                                   : 0.0;
        const double cliff = reference - base20.peakQps;
        const double recovery =
            cliff > 0.0 ? (tier20.peakQps - base20.peakQps) / cliff
                        : 1.0;
        std::printf("Tiering at the 20%% pool: %.2fx over the "
                    "single-tier baseline, recovering %.0f%% of the "
                    "capacity cliff (gate: >= 60%%); %.0f tokens "
                    "restored from the spill tiers at peak.\n\n",
                    speedup, 100.0 * recovery, tier20.restoredTokens);
        if (recovery < 0.6) {
            std::fprintf(stderr,
                         "FAIL: tiered KV cache at the 20%% pool "
                         "recovered only %.0f%% of the capacity "
                         "cliff (need >= 60%%) on %s\n",
                         100.0 * recovery,
                         std::string(workload::benchmarkName(bench))
                             .c_str());
            gate_ok = false;
        }
    }
    if (!telemetry.write())
        return 1;
    return gate_ok ? 0 : 1;
}
