/**
 * @file
 * Fig 17 — maximum sustainable throughput, p95 latency and
 * prefix-cache hit rate as the GPU memory reserved for the KV cache
 * varies from 10% to 200% of the model weight size. Small pools
 * serialize request scheduling; mid-size pools admit batches but
 * thrash the prefix cache.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace benchutil;

struct PoolResult
{
    double fraction = 0.0;
    double peakQps = 0.0;
    double p95AtPeak = 0.0;
    double hitRate = 0.0;
};

/** Max achieved QPS whose p95 stays within 2.5x the large-pool
 *  unloaded latency. */
PoolResult
measurePool(Benchmark bench, double fraction, double base_p95,
            const std::vector<double> &qps_points,
            TelemetryCli &telemetry)
{
    const auto weight_bytes = llm::llama31_8b().weightBytes();
    const auto pool = static_cast<std::int64_t>(
        fraction * static_cast<double>(weight_bytes));
    PoolResult out;
    out.fraction = fraction;
    for (double qps : qps_points) {
        const auto r = serveAt(qps, false, AgentKind::ReAct, bench,
                               100, true, pool, &telemetry);
        if (r.p95() <= 2.5 * base_p95 &&
            r.throughputQps() > out.peakQps) {
            out.peakQps = r.throughputQps();
            out.p95AtPeak = r.p95();
            out.hitRate = r.cacheHitRate;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig17_kv_capacity");

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::WebShop}) {
        const std::vector<double> qps_points =
            bench == Benchmark::HotpotQA
                ? std::vector<double>{0.125, 0.25, 0.5, 1.0, 1.5, 2.0}
                : std::vector<double>{0.125, 0.25, 0.5, 0.75, 1.0,
                                      1.25};
        // Unloaded reference latency on the full pool.
        const double base_p95 =
            serveAt(qps_points.front(), false, AgentKind::ReAct,
                    bench, 60, true, 0, &telemetry)
                .p95();

        core::Table t(
            "Fig 17: KV-pool capacity sensitivity — ReAct on " +
            std::string(workload::benchmarkName(bench)));
        t.header({"Pool (% of weights)", "Peak sustainable QPS",
                  "p95 at peak", "Hit rate", "vs 200% pool"});
        std::vector<PoolResult> results;
        for (double frac : {0.10, 0.20, 0.30, 1.00, 2.00})
            results.push_back(
                measurePool(bench, frac, base_p95, qps_points,
                            telemetry));
        const double reference = results.back().peakQps;
        for (const auto &r : results) {
            t.row({core::fmtPercent(r.fraction, 0),
                   core::fmtDouble(r.peakQps, 2),
                   core::fmtSeconds(r.p95AtPeak),
                   core::fmtPercent(r.hitRate),
                   core::fmtPercent(r.peakQps / reference - 1.0)});
        }
        t.print();
        std::printf("Paper: -86.3%% at 10%%, -73.6%% at 20%%, and "
                    "-35%%/-18%% at 30%% (cache thrashing), relative "
                    "to the 200%% configuration.\n\n");
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
