/**
 * @file
 * Fig 10 — breakdown of LLM inference latency into prefill and decode
 * with and without prefix caching, per (agent, benchmark) pair.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig10_prefix_prefill");

    core::Table t("Fig 10: Prefill/decode latency split, with vs "
                  "without prefix caching");
    t.header({"Benchmark", "Agent", "Prefill (no cache)",
              "Prefill (cache)", "Decode (no cache)", "Decode (cache)",
              "Prefill reduction"});

    double reduction_total = 0.0;
    int reduction_count = 0;

    for (const auto &[agent, bench] : supportedPairs()) {
        auto off_cfg = defaultProbe(agent, bench, false);
        telemetry.apply(off_cfg);
        const auto off = core::runProbe(off_cfg);
        auto on_cfg = defaultProbe(agent, bench, true);
        telemetry.apply(on_cfg);
        const auto on = core::runProbe(on_cfg);

        auto phase_avgs = [](const core::ProbeResult &r) {
            double prefill = 0.0;
            double decode = 0.0;
            for (const auto &req : r.requests) {
                prefill += req.gpuPrefillSeconds;
                decode += req.gpuDecodeSeconds;
            }
            const double n = static_cast<double>(r.requests.size());
            return std::pair<double, double>{prefill / n, decode / n};
        };
        const auto [p_off, d_off] = phase_avgs(off);
        const auto [p_on, d_on] = phase_avgs(on);
        const double reduction = 1.0 - p_on / p_off;
        if (agent != AgentKind::CoT) {
            reduction_total += reduction;
            ++reduction_count;
        }
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtSeconds(p_off), core::fmtSeconds(p_on),
               core::fmtSeconds(d_off), core::fmtSeconds(d_on),
               core::fmtPercent(reduction)});
    }
    t.print();

    std::printf("\nPrefix caching cuts agent prefill time by %.1f%% on "
                "average (paper: 58.6%%); decode is untouched.\n",
                100.0 * reduction_total / reduction_count);
    if (!telemetry.write())
        return 1;
    return 0;
}
