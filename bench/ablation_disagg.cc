/**
 * @file
 * Ablation — prefill/decode disaggregation (Splitwise/DistServe,
 * cited in §IV): two GPUs as an aggregated pair (round-robin) vs a
 * prefill node + decode node pair. Disaggregation shields decode
 * traffic from long prefills, compressing the TTFT tail under
 * prefill-heavy load at the cost of the KV transfer hop.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "serving/disagg.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace benchutil;

struct RunStats
{
    stats::SampleSet e2e;
    stats::SampleSet ttft;
    int completed = 0;
    double makespan = 0.0;
};

/** Build a prefill-heavy chat request (long prompt, short output). */
serving::GenRequest
makeRequest(std::uint64_t index)
{
    const workload::ShareGptSampler sampler(kSeed);
    const auto chat = sampler.sample(index);
    serving::GenRequest req;
    req.prompt = workload::makeTokens(
        workload::substream(workload::streamId(kSeed, "disagg"),
                            index),
        std::max<std::int64_t>(64, chat.promptTokens * 4));
    req.maxNewTokens = std::max<std::int64_t>(16, chat.outputTokens / 2);
    return req;
}

template <typename Server>
sim::Task<void>
worker(sim::Simulation &sim, Server &server, std::uint64_t index,
       RunStats &out)
{
    const sim::Tick submit = sim.now();
    serving::GenResult r =
        co_await server.generate(makeRequest(index));
    out.e2e.add(sim::toSeconds(sim.now() - submit));
    out.ttft.add(r.ttftSeconds);
    ++out.completed;
}

template <typename Server, typename Pick>
sim::Task<void>
driver(sim::Simulation &sim, double qps, int n, Pick pick,
       RunStats &out)
{
    sim::Rng arrivals(kSeed, "disagg.arrivals", 0);
    std::vector<sim::Task<void>> workers;
    for (int i = 0; i < n; ++i) {
        if (i > 0)
            co_await sim::delaySec(sim,
                                   arrivals.exponential(1.0 / qps));
        Server &server = pick(i);
        workers.push_back(worker(sim, server,
                                 static_cast<std::uint64_t>(i), out));
    }
    co_await sim::allOf(std::move(workers));
}

RunStats
runAggregated(double qps, int n, std::int64_t step_budget)
{
    sim::Simulation sim;
    auto cfg = core::enginePreset8b();
    cfg.maxBatchTokens = step_budget;
    serving::LlmEngine a(sim, cfg);
    serving::LlmEngine b(sim, cfg);
    RunStats out;
    auto drive = driver<serving::LlmEngine>(
        sim, qps, n,
        [&](int i) -> serving::LlmEngine & {
            return i % 2 == 0 ? a : b;
        },
        out);
    const sim::Tick start = sim.now();
    sim.run();
    out.makespan = sim::toSeconds(sim.now() - start);
    (void)drive;
    return out;
}

RunStats
runDisaggregated(double qps, int n, std::int64_t step_budget)
{
    sim::Simulation sim;
    serving::DisaggConfig cfg;
    cfg.prefillNode = core::enginePreset8b();
    cfg.prefillNode.maxBatchTokens = step_budget;
    cfg.decodeNode = core::enginePreset8b();
    cfg.decodeNode.maxBatchTokens = step_budget;
    serving::DisaggServer server(sim, cfg);
    RunStats out;
    auto drive = driver<serving::DisaggServer>(
        sim, qps, n,
        [&](int) -> serving::DisaggServer & { return server; }, out);
    const sim::Tick start = sim.now();
    sim.run();
    out.makespan = sim::toSeconds(sim.now() - start);
    (void)drive;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_disagg");

    core::Table t("Ablation: prefill/decode disaggregation "
                  "(2 GPUs each; prefill-heavy chat)");
    t.header({"Architecture", "Scheduler", "QPS", "TTFT p95",
              "E2E p95", "Throughput"});
    for (double qps : {3.0, 5.0}) {
        const int n = 200;
        struct Case
        {
            const char *sched;
            std::int64_t budget;
        };
        for (const Case c : {Case{"chunked (512)", 512},
                             Case{"unchunked (8k)", 8192}}) {
            const auto agg = runAggregated(qps, n, c.budget);
            const auto dis = runDisaggregated(qps, n, c.budget);
            t.row({"aggregated x2", c.sched, core::fmtDouble(qps, 1),
                   core::fmtSeconds(agg.ttft.percentile(95)),
                   core::fmtSeconds(agg.e2e.percentile(95)),
                   core::fmtDouble(agg.completed / agg.makespan, 2)});
            t.row({"disaggregated", c.sched, core::fmtDouble(qps, 1),
                   core::fmtSeconds(dis.ttft.percentile(95)),
                   core::fmtSeconds(dis.e2e.percentile(95)),
                   core::fmtDouble(dis.completed / dis.makespan, 2)});
        }
    }
    t.print();

    std::printf("\nDesign note: the paper's §IV phase analysis cites "
                "Splitwise/DistServe; this ablation rebuilds the "
                "architecture and exposes its trade-off. Decode "
                "isolation trims the end-to-end tail (most visibly "
                "under the unchunked scheduler, where whole prefills "
                "otherwise stall everyone's decode), while dedicating "
                "only one node to prefill inflates TTFT — phase-aware "
                "capacity sizing is the whole game, exactly as "
                "Splitwise argues.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
