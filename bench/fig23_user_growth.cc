/**
 * @file
 * Fig 23 — growth of ChatGPT weekly active users (reported series)
 * and the derived daily-query assumption used by Table III.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig23_user_growth");

    core::Table t("Fig 23: ChatGPT weekly active users");
    t.header({"Date", "WAU (millions)", "Bar"});
    for (const auto &point : energy::chatGptWauSeries()) {
        t.row({point.date, core::fmtCount(point.millions),
               std::string(static_cast<std::size_t>(
                               point.millions / 10.0),
                           '#')});
    }
    t.print();

    const double wau = energy::chatGptWauSeries().back().millions;
    std::printf("\n%.0f M WAU -> ~%.1f M daily active users -> the "
                "%.1f M queries/day assumption of Table III (one "
                "agentic query per user per day).\n",
                wau, wau / 7.0, energy::chatGptDailyQueries / 1e6);
    if (!telemetry.write())
        return 1;
    return 0;
}
