/**
 * @file
 * Fig 4 — average number of LLM and tool invocations per request for
 * every evaluated (agent, benchmark) pair, plus the paper's headline
 * ratios (tool-augmented agents vs CoT; LATS's call count).
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig04_invocations");

    core::Table t("Fig 4: Average LLM and tool invocations per request");
    t.header({"Benchmark", "Agent", "LLM calls", "Tool calls"});

    double cot_calls = 0.0;
    int cot_count = 0;
    double aug_calls = 0.0; // tool-augmented agents excluding LATS
    int aug_count = 0;
    double lats_calls = 0.0;
    int lats_count = 0;

    for (const auto &[agent, bench] : supportedPairs()) {
        auto r_cfg = defaultProbe(agent, bench);
        telemetry.apply(r_cfg);
        const auto r = core::runProbe(r_cfg);
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtDouble(r.meanLlmCalls(), 1),
               core::fmtDouble(r.meanToolCalls(), 1)});
        if (agent == AgentKind::CoT) {
            cot_calls += r.meanLlmCalls();
            ++cot_count;
        } else if (agent == AgentKind::Lats) {
            lats_calls += r.meanLlmCalls();
            ++lats_count;
        } else {
            aug_calls += r.meanLlmCalls();
            ++aug_count;
        }
    }
    t.print();

    const double cot_avg = cot_calls / cot_count;
    const double aug_avg = aug_calls / aug_count;
    std::printf("\nTool-augmented agents (excl. tree search) average "
                "%.1fx the LLM calls of CoT (paper: 9.2x).\n",
                aug_avg / cot_avg);
    std::printf("LATS averages %.1f LLM calls per request "
                "(paper: 71.0).\n",
                lats_calls / lats_count);
    if (!telemetry.write())
        return 1;
    return 0;
}
