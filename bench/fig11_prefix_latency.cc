/**
 * @file
 * Fig 11 — end-to-end per-request LLM inference latency with and
 * without prefix caching: large relative prefill savings translate
 * into modest end-to-end gains because decode dominates.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig11_prefix_latency");

    core::Table t("Fig 11: LLM inference latency with/without prefix "
                  "caching");
    t.header({"Benchmark", "Agent", "LLM time (no cache)",
              "LLM time (cache)", "Reduction"});

    double agent_reduction = 0.0;
    int agent_count = 0;
    double cot_reduction = 0.0;
    int cot_count = 0;

    for (const auto &[agent, bench] : supportedPairs()) {
        auto off_cfg = defaultProbe(agent, bench, false);
        telemetry.apply(off_cfg);
        const auto off = core::runProbe(off_cfg);
        auto on_cfg = defaultProbe(agent, bench, true);
        telemetry.apply(on_cfg);
        const auto on = core::runProbe(on_cfg);
        auto llm_time = [](const core::ProbeResult &r) {
            double total = 0.0;
            for (const auto &req : r.requests)
                total += req.gpuPrefillSeconds + req.gpuDecodeSeconds;
            return total / static_cast<double>(r.requests.size());
        };
        const double t_off = llm_time(off);
        const double t_on = llm_time(on);
        const double reduction = 1.0 - t_on / t_off;
        if (agent == AgentKind::CoT) {
            cot_reduction += reduction;
            ++cot_count;
        } else {
            agent_reduction += reduction;
            ++agent_count;
        }
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtSeconds(t_off), core::fmtSeconds(t_on),
               core::fmtPercent(reduction)});
    }
    t.print();

    std::printf("\nEnd-to-end LLM-time reduction from caching: "
                "agents %.1f%% (paper: 15.7%%), CoT %.1f%% "
                "(paper: minimal — decode dominates).\n",
                100.0 * agent_reduction / agent_count,
                100.0 * cot_reduction / cot_count);
    if (!telemetry.write())
        return 1;
    return 0;
}
