/**
 * @file
 * Fig 14 — p50 and p95 end-to-end latency for the chatbot (ShareGPT)
 * and agent (ReAct on HotpotQA/WebShop) workloads as offered QPS
 * rises, prefix caching enabled. The agent saturates at a far lower
 * QPS and its tail climbs much faster.
 */

#include <cstdio>

#include "common.hh"
#include "sim/strfmt.hh"

namespace
{

using namespace benchutil;

/** Metric-name-safe tag for a QPS value ("0.5" -> "0p5"). */
std::string
qpsTag(double qps)
{
    std::string tag = sim::strfmt("%g", qps);
    for (char &c : tag) {
        if (c == '.')
            c = 'p';
    }
    return tag;
}

void
sweep(const char *name, const char *slug, bool chatbot, Benchmark bench,
      const std::vector<double> &qps_points, int requests,
      TelemetryCli *telemetry)
{
    core::Table t(std::string("Fig 14: ") + name +
                  " latency vs offered load");
    t.header({"QPS", "p50 latency", "p95 latency", "Achieved QPS"});
    for (double qps : qps_points) {
        const auto r = serveAt(qps, chatbot, AgentKind::ReAct, bench,
                               requests, true, 0, telemetry);
        t.row({core::fmtDouble(qps, 2), core::fmtSeconds(r.p50()),
               core::fmtSeconds(r.p95()),
               core::fmtDouble(r.throughputQps(), 2)});
        if (telemetry->reportRequested()) {
            const std::string prefix =
                std::string(slug) + "_qps_" + qpsTag(qps);
            reportServePoint(telemetry->report(), prefix, r);
            telemetry->report().set(prefix + "_cost_gpu_seconds",
                                    r.totalCost.gpuSeconds());
        }
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // --trace/--metrics/--csv instrument the sweep; the files
    // describe the last (most loaded) configuration executed.
    // --report <path> writes a machine-readable BENCH_agentsim.json
    // accumulated across every sweep point (perf_report_diff gates on
    // it).
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig14_qps_sweep");

    sweep("Chatbot (ShareGPT)", "chat_sharegpt", true,
          Benchmark::ShareGpt,
          {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}, 250,
          &telemetry);
    sweep("Agent ReAct (HotpotQA)", "react_hotpotqa", false,
          Benchmark::HotpotQA,
          {0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5}, 150, &telemetry);
    sweep("Agent ReAct (WebShop)", "react_webshop", false,
          Benchmark::WebShop,
          {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}, 150, &telemetry);

    std::printf("Paper reference: ShareGPT sustains ~6.4 QPS; ReAct "
                "only ~2.6 (HotpotQA) and ~1.2 (WebShop), with p95 "
                "rising ~18 s per extra QPS near saturation vs ~0.9 s "
                "for the chatbot.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
