/**
 * @file
 * Extension — the §VI sustainability argument carried to dollars and
 * carbon: per-query energy of each workflow converted to daily
 * electricity cost and CO2 at today's (ChatGPT) and tomorrow's
 * (Google-search) traffic.
 */

#include <cstdio>

#include "common.hh"

namespace
{

using namespace benchutil;

double
agentWh(AgentKind agent, bool use70b)
{
    auto cfg = defaultProbe(agent, Benchmark::HotpotQA, true, use70b,
                            25);
    return core::runProbe(cfg).meanEnergyWh();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ext_sustainability");

    core::Table t("Extension: electricity cost and carbon of agentic "
                  "serving");
    t.header({"Workflow", "Model", "Wh/query",
              "$/day @71.4M", "tCO2/day @71.4M", "$/day @13.7B",
              "tCO2/day @13.7B"});

    struct Row
    {
        std::string name;
        double wh;
    };
    for (bool use70b : {false, true}) {
        std::vector<Row> rows;
        rows.push_back({"Chatbot",
                        shareGptWhPerQuery(use70b, 60)});
        rows.push_back({"ReAct agent",
                        agentWh(AgentKind::ReAct, use70b)});
        rows.push_back({"LATS agent",
                        agentWh(AgentKind::Lats, use70b)});
        for (const auto &row : rows) {
            t.row({row.name, use70b ? "70B" : "8B",
                   core::fmtDouble(row.wh, 2),
                   "$" + core::fmtEng(energy::dailyCostUsd(
                             row.wh, energy::chatGptDailyQueries)),
                   core::fmtDouble(
                       energy::dailyCo2Kg(
                           row.wh, energy::chatGptDailyQueries) /
                           1000.0,
                       1),
                   "$" + core::fmtEng(energy::dailyCostUsd(
                             row.wh, energy::googleDailyQueries)),
                   core::fmtDouble(
                       energy::dailyCo2Kg(
                           row.wh, energy::googleDailyQueries) /
                           1000.0,
                       1)});
        }
    }
    t.print();

    std::printf("\nAssumptions: $%.3f/kWh industrial power, "
                "%.2f kg CO2/kWh grid intensity; GPU energy only "
                "(no cooling/PUE), so real figures are higher — the "
                "paper's conservatism argument.\n",
                energy::usdPerKwh, energy::kgCo2PerKwh);
    if (!telemetry.write())
        return 1;
    return 0;
}
