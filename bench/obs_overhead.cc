/**
 * @file
 * Observability-overhead micro-bench: what the full telemetry stack
 * (Chrome trace sink, causal spans, windowed time-series sampling and
 * the flight recorder's retroactive rings) costs in host wall time on
 * a fixed serving workload.
 *
 * The same ReAct serving run executes bare and fully instrumented
 * (several repetitions each, best-of to shed scheduler noise), and the
 * binary reports
 *
 *   telemetry_overhead_pct = (instrumented - bare) / bare * 100
 *
 * into the perf report (informational — host timing never gates a
 * diff). It also enforces the observer-purity contract: the
 * instrumented run must produce byte-for-byte the same request-level
 * results as the bare run, or the binary exits non-zero.
 *
 *   obs_overhead [--report out.json] [--smoke]
 */

#include <cstdio>
#include <cstring>

#include "common.hh"

namespace
{

using namespace benchutil;

ServeConfig
makeWorkload(int requests)
{
    ServeConfig cfg;
    cfg.agent = AgentKind::ReAct;
    cfg.bench = Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 2.0;
    cfg.numRequests = requests;
    cfg.seed = kSeed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("obs_overhead");

    const int requests = smoke ? 40 : 120;
    const int reps = smoke ? 2 : 3;

    // Bare runs: no telemetry at all.
    ServeResult bare;
    double bare_wall = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        auto cfg = makeWorkload(requests);
        const auto r = core::runServing(cfg);
        if (rep == 0 || r.simWallSeconds < bare_wall)
            bare_wall = r.simWallSeconds;
        bare = r;
    }

    // Instrumented runs: trace sink + spans + time-series sampler +
    // flight-recorder rings all live (no SLO tracker, so no incident
    // is ever dumped — this measures the always-on cost).
    telemetry::SessionTelemetry session;
    ServeResult instr;
    double instr_wall = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        auto cfg = makeWorkload(requests);
        session.reset();
        cfg.telemetry = &session;
        cfg.recorder = &session.recorder;
        cfg.timeseries = &session.timeseries;
        const auto r = core::runServing(cfg);
        if (rep == 0 || r.simWallSeconds < instr_wall)
            instr_wall = r.simWallSeconds;
        instr = r;
    }

    const double overhead_pct =
        bare_wall > 0.0 ? (instr_wall - bare_wall) / bare_wall * 100.0
                        : 0.0;

    core::Table table("Observability overhead (ReAct/HotpotQA, "
                      "open loop)");
    table.header({"Mode", "Wall", "Events", "p50", "p95", "GPU busy"});
    table.row({"bare", sim::strfmt("%.3f s", bare_wall),
               core::fmtCount(bare.simEventsProcessed),
               core::fmtSeconds(bare.p50()),
               core::fmtSeconds(bare.p95()),
               core::fmtSeconds(bare.engineStats.busySeconds)});
    table.row({"instrumented", sim::strfmt("%.3f s", instr_wall),
               core::fmtCount(instr.simEventsProcessed),
               core::fmtSeconds(instr.p50()),
               core::fmtSeconds(instr.p95()),
               core::fmtSeconds(instr.engineStats.busySeconds)});
    table.print();

    std::printf("\nTelemetry overhead: %.1f%% host wall time "
                "(best of %d; trace %zu events, %lld spans, "
                "%zu time-series points, recorder rings %zu/%zu).\n",
                overhead_pct, reps, session.trace.eventCount(),
                static_cast<long long>(session.spans.requestsFinished()),
                session.timeseries.pointsRetained(),
                session.recorder.traceEventsRetained(),
                session.recorder.spansRetained());

    // Observer purity: instrumentation must not change the sim.
    const bool identical =
        bare.completed == instr.completed &&
        bare.solved == instr.solved && bare.p50() == instr.p50() &&
        bare.p95() == instr.p95() &&
        bare.engineStats.busySeconds == instr.engineStats.busySeconds;
    if (!identical) {
        std::fprintf(stderr,
                     "error: instrumented run diverged from bare run "
                     "(telemetry is supposed to be a pure observer)\n");
        return 1;
    }
    std::printf("Observer purity: instrumented run bit-identical to "
                "bare run (completed/solved/p50/p95/GPU busy).\n");

    if (telemetry.reportRequested()) {
        auto &rep = telemetry.report();
        rep.set("telemetry_overhead_pct", overhead_pct);
        rep.set("sim_bare_wall_seconds", bare_wall);
        rep.set("sim_instrumented_wall_seconds", instr_wall);
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
