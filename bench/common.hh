/**
 * @file
 * Shared helpers for the experiment binaries (one per paper
 * table/figure). Each binary prints the paper-style rows/series for
 * its experiment; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef AGENTSIM_BENCH_COMMON_HH
#define AGENTSIM_BENCH_COMMON_HH

#include <string>
#include <utility>
#include <vector>

#include "core/probe.hh"
#include "core/serving_system.hh"
#include "core/table.hh"
#include "energy/projection.hh"

namespace benchutil
{

using namespace agentsim;
using agents::AgentConfig;
using agents::AgentKind;
using core::ProbeConfig;
using core::ProbeResult;
using core::ServeConfig;
using core::ServeResult;
using workload::Benchmark;

/** Tasks per configuration (paper §V: 50 sample questions). */
constexpr int kProbeTasks = 50;

/** Global experiment seed. */
constexpr std::uint64_t kSeed = 2026;

/** All evaluated (agent, benchmark) pairs, in paper order. */
inline std::vector<std::pair<AgentKind, Benchmark>>
supportedPairs()
{
    std::vector<std::pair<AgentKind, Benchmark>> pairs;
    for (Benchmark b : workload::agenticBenchmarks) {
        for (AgentKind a : agents::allAgents) {
            if (agents::agentSupports(a, b))
                pairs.emplace_back(a, b);
        }
    }
    return pairs;
}

/** Default single-request probe configuration. */
inline ProbeConfig
defaultProbe(AgentKind agent, Benchmark bench, bool prefix_caching = true,
             bool use70b = false, int tasks = kProbeTasks)
{
    ProbeConfig cfg;
    cfg.agent = agent;
    cfg.bench = bench;
    cfg.engineConfig =
        use70b ? core::enginePreset70b() : core::enginePreset8b();
    cfg.engineConfig.enablePrefixCaching = prefix_caching;
    cfg.numTasks = tasks;
    cfg.seed = kSeed;
    return cfg;
}

/** Closed-loop single-stream ShareGPT run (one request at a time). */
inline ServeResult
shareGptClosedLoop(int requests, bool use70b = false,
                   bool prefix_caching = true)
{
    ServeConfig cfg;
    cfg.chatbot = true;
    cfg.engineConfig =
        use70b ? core::enginePreset70b() : core::enginePreset8b();
    cfg.engineConfig.enablePrefixCaching = prefix_caching;
    cfg.closedLoop = true;
    cfg.numRequests = requests;
    cfg.seed = kSeed;
    return core::runServing(cfg);
}

/** Open-loop serving run at a given QPS. */
inline ServeResult
serveAt(double qps, bool chatbot, AgentKind agent, Benchmark bench,
        int requests, bool prefix_caching = true,
        std::int64_t kv_pool_bytes = 0)
{
    ServeConfig cfg;
    cfg.chatbot = chatbot;
    cfg.agent = agent;
    cfg.bench = bench;
    cfg.engineConfig = core::enginePreset8b();
    cfg.engineConfig.enablePrefixCaching = prefix_caching;
    cfg.engineConfig.kvPoolBytes = kv_pool_bytes;
    cfg.qps = qps;
    cfg.numRequests = requests;
    cfg.seed = kSeed;
    return core::runServing(cfg);
}

/** Display name for an (agent, benchmark) pair. */
inline std::string
pairName(AgentKind agent, Benchmark bench)
{
    return std::string(workload::benchmarkName(bench)) + "/" +
           std::string(agents::agentName(agent));
}

/** Per-query energy (Wh) of ShareGPT single-stream serving. */
inline double
shareGptWhPerQuery(bool use70b, int requests = 100)
{
    const ServeResult r = shareGptClosedLoop(requests, use70b);
    return r.energyWh / requests;
}

} // namespace benchutil

#endif // AGENTSIM_BENCH_COMMON_HH
