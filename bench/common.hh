/**
 * @file
 * Shared helpers for the experiment binaries (one per paper
 * table/figure). Each binary prints the paper-style rows/series for
 * its experiment; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef AGENTSIM_BENCH_COMMON_HH
#define AGENTSIM_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.hh"
#include "core/perf_report.hh"
#include "core/probe.hh"
#include "core/serving_system.hh"
#include "core/table.hh"
#include "energy/projection.hh"
#include "telemetry/session.hh"

namespace benchutil
{

using namespace agentsim;
using agents::AgentConfig;
using agents::AgentKind;
using core::ProbeConfig;
using core::ProbeResult;
using core::ServeConfig;
using core::ServeResult;
using workload::Benchmark;

/** Tasks per configuration (paper §V: 50 sample questions). */
constexpr int kProbeTasks = 50;

/** Global experiment seed. */
constexpr std::uint64_t kSeed = 2026;

/** All evaluated (agent, benchmark) pairs, in paper order. */
inline std::vector<std::pair<AgentKind, Benchmark>>
supportedPairs()
{
    std::vector<std::pair<AgentKind, Benchmark>> pairs;
    for (Benchmark b : workload::agenticBenchmarks) {
        for (AgentKind a : agents::allAgents) {
            if (agents::agentSupports(a, b))
                pairs.emplace_back(a, b);
        }
    }
    return pairs;
}

/**
 * Shared --trace/--metrics/--csv/--report plumbing for the fig*
 * binaries (--trace-out is accepted as an alias of --trace), plus
 * --flight-record / --incident-dir <dir> for anomaly-triggered
 * incident capture (either flag arms the flight recorder; bundles
 * land under the incident dir, default "incidents").
 *
 *   fig14_qps_sweep --trace out.json --metrics out.prom \
 *                   --csv out.csv --report BENCH_agentsim.json
 *   chaos_slo --flight-record --incident-dir out/incidents
 *
 * Each instrumented run resets the session, so the emitted telemetry
 * files describe the *last* configuration the binary executed (the
 * most loaded sweep point). The perf report is different: the binary
 * accumulates metrics from every sweep point into report() and write()
 * emits them all at once. Binaries opt in per run via apply().
 *
 * All artifact writes go through telemetry::writeArtifact, so a
 * failed write is always loud and write() returning false must make
 * the binary exit non-zero.
 */
class TelemetryCli
{
  public:
    TelemetryCli(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const bool has_value = i + 1 < argc;
            if (std::strcmp(argv[i], "--flight-record") == 0) {
                flightRecord_ = true;
                continue;
            }
            if (std::strcmp(argv[i], "--incident-dir") == 0) {
                if (!has_value) {
                    std::fprintf(stderr,
                                 "warn: --incident-dir requires a "
                                 "directory path; ignored\n");
                    continue;
                }
                incidentDir_ = argv[++i];
                flightRecord_ = true;
                continue;
            }
            if (std::strcmp(argv[i], "--trace") == 0 ||
                std::strcmp(argv[i], "--trace-out") == 0 ||
                std::strcmp(argv[i], "--metrics") == 0 ||
                std::strcmp(argv[i], "--csv") == 0 ||
                std::strcmp(argv[i], "--report") == 0) {
                if (!has_value) {
                    std::fprintf(stderr,
                                 "warn: %s requires a file path; "
                                 "ignored\n",
                                 argv[i]);
                    continue;
                }
                if (std::strcmp(argv[i], "--trace") == 0 ||
                    std::strcmp(argv[i], "--trace-out") == 0)
                    trace_ = argv[++i];
                else if (std::strcmp(argv[i], "--metrics") == 0)
                    metrics_ = argv[++i];
                else if (std::strcmp(argv[i], "--csv") == 0)
                    csv_ = argv[++i];
                else
                    reportPath_ = argv[++i];
            }
        }
    }

    bool
    enabled() const
    {
        return !trace_.empty() || !metrics_.empty() || !csv_.empty() ||
               flightRecord_;
    }

    /** True when --report <path> was given. */
    bool reportRequested() const { return !reportPath_.empty(); }

    /** True when --flight-record (or --incident-dir) was given. */
    bool flightRecordRequested() const { return flightRecord_; }

    /** Incident bundle directory ("incidents" unless --incident-dir). */
    const std::string &incidentDir() const { return incidentDir_; }

    /** The perf report the binary fills before calling write(). */
    core::PerfReport &report() { return report_; }

    /** Attach (fresh) session telemetry to a serving run. */
    void
    apply(ServeConfig &cfg)
    {
        if (!enabled())
            return;
        session_.reset();
        cfg.telemetry = &session_;
        if (flightRecord_) {
            armRecorder();
            cfg.recorder = &session_.recorder;
            cfg.timeseries = &session_.timeseries;
        }
    }

    /** Attach (fresh) session telemetry to a probe run. */
    void
    apply(ProbeConfig &cfg)
    {
        if (!enabled())
            return;
        session_.reset();
        cfg.telemetry = &session_;
    }

    /** Attach (fresh) trace sink + registry to a cluster run. */
    void
    apply(core::ClusterConfig &cfg)
    {
        if (!enabled())
            return;
        session_.reset();
        if (!trace_.empty() || flightRecord_)
            cfg.traceSink = &session_.trace;
        cfg.metrics = &session_.registry;
        if (flightRecord_) {
            armRecorder();
            cfg.recorder = &session_.recorder;
            cfg.timeseries = &session_.timeseries;
            // Bundles carry a windowed blame table, so incident runs
            // also need the span collector.
            if (cfg.spans == nullptr)
                cfg.spans = &session_.spans;
        }
    }

    /** Write whatever outputs were requested. @return success. */
    bool
    write() const
    {
        bool ok = true;
        if (!trace_.empty()) {
            ok = telemetry::writeArtifact(trace_,
                                          session_.trace.toJson(),
                                          "Chrome trace") &&
                 ok;
        }
        if (!metrics_.empty()) {
            ok = telemetry::writeArtifact(
                     metrics_, session_.registry.renderPrometheus(),
                     "Prometheus metrics") &&
                 ok;
        }
        if (!csv_.empty()) {
            ok = telemetry::writeArtifact(
                     csv_,
                     telemetry::EngineSampler::renderCsv(
                         session_.engineSamples),
                     "engine iteration CSV") &&
                 ok;
        }
        if (!reportPath_.empty()) {
            ok = telemetry::writeArtifact(reportPath_,
                                          report_.renderJson(),
                                          "perf report") &&
                 ok;
        }
        return ok;
    }

    const telemetry::SessionTelemetry &session() const
    {
        return session_;
    }

  private:
    /** Point the (freshly reset) recorder at the incident dir. */
    void
    armRecorder()
    {
        telemetry::FlightRecorder::Config rc;
        rc.incidentDir = incidentDir_;
        session_.recorder.setConfig(rc);
    }

    std::string trace_;
    std::string metrics_;
    std::string csv_;
    std::string reportPath_;
    bool flightRecord_ = false;
    std::string incidentDir_ = "incidents";
    telemetry::SessionTelemetry session_;
    core::PerfReport report_;
};

/**
 * Fold a serving run's headline metrics into @p report under
 * @p prefix, plus the run's simulator self-timing into the shared
 * sim_* totals (accumulated across sweep points).
 */
inline void
reportServePoint(core::PerfReport &report, const std::string &prefix,
                 const ServeResult &r)
{
    report.set(prefix + "_p50_seconds", r.p50());
    report.set(prefix + "_p95_seconds", r.p95());
    report.set(prefix + "_throughput_qps", r.throughputQps());
    report.set(prefix + "_energy_wh", r.energyWh);
    report.set(prefix + "_gpu_busy_seconds",
               r.engineStats.busySeconds);
    // KV-tier effectiveness: hit rate and restored tokens are wins
    // the diff gate holds (higher is better); demotions are context.
    report.set(prefix + "_kv_prefix_hit_rate",
               r.cacheStats.hitRate());
    report.set(prefix + "_kv_tier_restored_tokens",
               static_cast<double>(r.cacheStats.dram.restoredTokens +
                                   r.cacheStats.nvme.restoredTokens));
    report.set(prefix + "_kv_tier_demotions",
               static_cast<double>(r.cacheStats.dram.demotedBlocks +
                                   r.cacheStats.nvme.demotedBlocks));

    auto bump = [&](const std::string &name, double delta) {
        report.set(name, report.get(name).value_or(0.0) + delta);
    };
    bump("sim_wall_seconds", r.simWallSeconds);
    bump("sim_events_processed", r.simEventsProcessed);
    const double wall = report.get("sim_wall_seconds").value_or(0.0);
    const double events =
        report.get("sim_events_processed").value_or(0.0);
    report.set("sim_events_per_second",
               wall > 0.0 ? events / wall : 0.0);
}

/** Default single-request probe configuration. */
inline ProbeConfig
defaultProbe(AgentKind agent, Benchmark bench, bool prefix_caching = true,
             bool use70b = false, int tasks = kProbeTasks)
{
    ProbeConfig cfg;
    cfg.agent = agent;
    cfg.bench = bench;
    cfg.engineConfig =
        use70b ? core::enginePreset70b() : core::enginePreset8b();
    cfg.engineConfig.enablePrefixCaching = prefix_caching;
    cfg.numTasks = tasks;
    cfg.seed = kSeed;
    return cfg;
}

/** Closed-loop single-stream ShareGPT run (one request at a time). */
inline ServeResult
shareGptClosedLoop(int requests, bool use70b = false,
                   bool prefix_caching = true)
{
    ServeConfig cfg;
    cfg.chatbot = true;
    cfg.engineConfig =
        use70b ? core::enginePreset70b() : core::enginePreset8b();
    cfg.engineConfig.enablePrefixCaching = prefix_caching;
    cfg.closedLoop = true;
    cfg.numRequests = requests;
    cfg.seed = kSeed;
    return core::runServing(cfg);
}

/**
 * Open-loop serving run at a given QPS. The trailing block counts
 * enable the DRAM / NVMe KV spill tiers (0 = disabled, the default —
 * identical to the pre-tier engine).
 */
inline ServeResult
serveAt(double qps, bool chatbot, AgentKind agent, Benchmark bench,
        int requests, bool prefix_caching = true,
        std::int64_t kv_pool_bytes = 0,
        TelemetryCli *telemetry = nullptr,
        std::int64_t dram_cache_blocks = 0,
        std::int64_t nvme_cache_blocks = 0)
{
    ServeConfig cfg;
    cfg.chatbot = chatbot;
    cfg.agent = agent;
    cfg.bench = bench;
    cfg.engineConfig = core::enginePreset8b();
    cfg.engineConfig.enablePrefixCaching = prefix_caching;
    cfg.engineConfig.kvPoolBytes = kv_pool_bytes;
    cfg.engineConfig.hostCacheBlocks = dram_cache_blocks;
    cfg.engineConfig.nvmeCacheBlocks = nvme_cache_blocks;
    cfg.qps = qps;
    cfg.numRequests = requests;
    cfg.seed = kSeed;
    if (telemetry != nullptr)
        telemetry->apply(cfg);
    return core::runServing(cfg);
}

/** Display name for an (agent, benchmark) pair. */
inline std::string
pairName(AgentKind agent, Benchmark bench)
{
    return std::string(workload::benchmarkName(bench)) + "/" +
           std::string(agents::agentName(agent));
}

/** Per-query energy (Wh) of ShareGPT single-stream serving. */
inline double
shareGptWhPerQuery(bool use70b, int requests = 100)
{
    const ServeResult r = shareGptClosedLoop(requests, use70b);
    return r.energyWh / requests;
}

} // namespace benchutil

#endif // AGENTSIM_BENCH_COMMON_HH
