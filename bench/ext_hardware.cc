/**
 * @file
 * Extension — hardware generations: the paper's introduction frames
 * its numbers against H100-class deployments (xAI Colossus: 100k
 * H100s, 150 MW). This bench re-runs the per-query latency/energy
 * measurements on a simulated H100-80GB node: faster decode (HBM3)
 * cuts latency, higher board power claws back part of the energy win
 * — per-query Wh improves far less than raw speed.
 */

#include <cstdio>

#include "common.hh"

namespace
{

using namespace benchutil;

serving::EngineConfig
preset(bool h100)
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = h100 ? llm::singleH100() : llm::singleA100();
    cfg.enablePrefixCaching = true;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ext_hardware");

    core::Table t("Extension: A100 vs H100 per-query cost "
                  "(Llama-3.1-8B)");
    t.header({"Workload", "GPU", "Mean latency", "Wh/query",
              "Accuracy"});

    for (bool h100 : {false, true}) {
        const char *gpu = h100 ? "H100-80GB" : "A100-40GB";
        {
            ServeConfig cfg;
            cfg.chatbot = true;
            cfg.engineConfig = preset(h100);
            cfg.closedLoop = true;
            cfg.numRequests = 80;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            t.row({"Chatbot (ShareGPT)", gpu,
                   core::fmtSeconds(r.e2eSeconds.mean()),
                   core::fmtDouble(r.energyWh / cfg.numRequests, 2),
                   "-"});
        }
        for (AgentKind agent : {AgentKind::ReAct, AgentKind::Lats}) {
            core::ProbeConfig cfg;
            cfg.agent = agent;
            cfg.bench = Benchmark::HotpotQA;
            cfg.engineConfig = preset(h100);
            cfg.numTasks = 30;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            t.row({std::string(agents::agentName(agent)), gpu,
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanEnergyWh(), 2),
                   core::fmtPercent(r.accuracy())});
        }
    }
    t.print();

    std::printf("\nTakeaway: a faster GPU compresses latency but the "
                "energy-per-query of agentic serving falls far less "
                "than proportionally (higher draw, and tool-idle time "
                "does not shrink) — hardware generations alone do not "
                "solve the paper's sustainability problem.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
