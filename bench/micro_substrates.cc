/**
 * @file
 * google-benchmark micro benchmarks for the hot substrate paths: the
 * event queue, coroutine scheduling, the KV block manager (allocation
 * and prefix lookups), the roofline perf model, and RNG streams.
 */

#include <benchmark/benchmark.h>

#include "core/probe.hh"
#include "kv/block_manager.hh"
#include "llm/perf_model.hh"
#include "sim/awaitable.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;

void
BM_EventQueuePushPop(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        for (int i = 0; i < n; ++i)
            q.push((i * 7919) % 1000, [] {});
        while (!q.empty())
            benchmark::DoNotOptimize(q.pop().when);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

sim::Task<void>
hopper(sim::Simulation &sim, int hops)
{
    for (int i = 0; i < hops; ++i)
        co_await sim::delay(sim, 1);
}

void
BM_CoroutineHops(benchmark::State &state)
{
    const int hops = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulation sim;
        auto t = hopper(sim, hops);
        sim.run();
        benchmark::DoNotOptimize(t.done());
    }
    state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineHops)->Arg(1000);

void
BM_KvAllocateRelease(benchmark::State &state)
{
    kv::BlockManagerConfig cfg;
    cfg.numBlocks = 4096;
    cfg.blockSize = 16;
    cfg.enablePrefixCaching = true;
    kv::BlockManager mgr(cfg);
    const auto prompt =
        workload::makeTokens(workload::streamId(1, "bm"), 1024);
    kv::SeqId next = 1;
    for (auto _ : state) {
        const kv::SeqId id = next++;
        auto alloc = mgr.allocatePrompt(id, prompt);
        benchmark::DoNotOptimize(alloc->cachedTokens);
        mgr.release(id);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KvAllocateRelease);

void
BM_KvPrefixMissThenHit(benchmark::State &state)
{
    // Alternating fresh/shared prompts exercise both lookup paths.
    kv::BlockManagerConfig cfg;
    cfg.numBlocks = 8192;
    cfg.blockSize = 16;
    kv::BlockManager mgr(cfg);
    std::uint64_t salt = 0;
    for (auto _ : state) {
        const auto prompt = workload::makeTokens(
            workload::streamId(salt++ % 64, "bm2"), 512);
        const kv::SeqId id = salt + 1000000;
        auto alloc = mgr.allocatePrompt(id, prompt);
        benchmark::DoNotOptimize(alloc->cachedTokens);
        mgr.release(id);
    }
}
BENCHMARK(BM_KvPrefixMissThenHit);

void
BM_PerfModelStep(benchmark::State &state)
{
    llm::PerfModel model(llm::llama31_8b(), llm::singleA100());
    llm::StepWork work;
    work.prefills.push_back({256, 1024});
    for (int i = 0; i < 64; ++i)
        work.decodeContexts.push_back(512 + i * 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.stepCost(work).seconds);
    }
}
BENCHMARK(BM_PerfModelStep);

void
BM_RngStream(benchmark::State &state)
{
    sim::Rng rng(1, "bm", 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.lognormalMean(1.2, 0.5));
}
BENCHMARK(BM_RngStream);

void
BM_SimulatedAgentRequest(benchmark::State &state)
{
    // End-to-end simulator throughput: one full ReAct request through
    // the serving stack per iteration (fresh world each time).
    std::uint64_t seed = 1;
    for (auto _ : state) {
        core::ProbeConfig cfg;
        cfg.agent = agents::AgentKind::ReAct;
        cfg.bench = workload::Benchmark::HotpotQA;
        cfg.engineConfig.model = llm::llama31_8b();
        cfg.engineConfig.node = llm::singleA100();
        cfg.numTasks = 1;
        cfg.seed = seed++;
        const auto r = core::runProbe(cfg);
        benchmark::DoNotOptimize(r.requests.front().result.e2eSeconds);
    }
}
BENCHMARK(BM_SimulatedAgentRequest);

void
BM_TokenStream(benchmark::State &state)
{
    std::uint64_t salt = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            workload::makeTokens(salt++, 1024).size());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_TokenStream);

} // namespace

BENCHMARK_MAIN();
