/**
 * @file
 * Parallel-engine throughput bench: events per host second versus
 * shard count on the fig14-calibrated serving workload (ReAct on
 * HotpotQA, Poisson arrivals), weak-scaled so every node sees the
 * same offered load.
 *
 * Each shard count runs three times on the sharded cluster
 * (core/sharded_cluster.hh): sequential (the window loop on one
 * thread), parallel, and parallel again. The bench *always* gates on
 * the determinism contract (docs/DETERMINISM.md):
 *
 *   - parallel must be bit-identical to sequential, and
 *   - parallel must be bit-identical run-to-run,
 *
 * for every shard count. The >= 4x speedup acceptance gate (8 shards
 * vs the single-threaded engine) only arms on hosts with >= 8
 * hardware threads and outside --smoke — on smaller hosts the
 * speedup column is reported as informational (EXPERIMENTS.md
 * records why).
 *
 *   sim_throughput [--report out.json] [--smoke]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "core/sharded_cluster.hh"
#include "sim/strfmt.hh"

namespace
{

using namespace benchutil;

/** Everything that must match between two runs of the same
 *  configuration for them to count as bit-identical. */
struct Digest
{
    int completed = 0;
    int solved = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double makespan = 0.0;
    std::uint64_t totalEvents = 0;
    std::vector<int> nodeRequests;

    bool
    operator==(const Digest &other) const
    {
        return completed == other.completed &&
               solved == other.solved && p50 == other.p50 &&
               p95 == other.p95 && makespan == other.makespan &&
               totalEvents == other.totalEvents &&
               nodeRequests == other.nodeRequests;
    }
};

Digest
digestOf(const core::ShardedClusterResult &r)
{
    Digest d;
    d.completed = r.completed;
    d.solved = r.solved;
    d.p50 = r.p50();
    d.p95 = r.p95();
    d.makespan = r.makespanSeconds;
    d.totalEvents = r.totalEvents;
    for (const auto &node : r.nodes)
        d.nodeRequests.push_back(node.requests);
    return d;
}

core::ShardedClusterConfig
makeConfig(int nodes, int requests_per_node, bool parallel)
{
    core::ShardedClusterConfig cfg;
    cfg.simShards = nodes;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::RoundRobin;
    core::WorkloadSpec spec;
    spec.agent = AgentKind::ReAct;
    spec.bench = Benchmark::HotpotQA;
    cfg.mix = {spec};
    // Weak scaling: hold per-node offered load at the fig14 operating
    // point (2 QPS/node) so shard count changes parallelism, not
    // saturation.
    cfg.qps = 2.0 * nodes;
    cfg.numRequests = requests_per_node * nodes;
    cfg.seed = kSeed;
    cfg.parallel = parallel;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("sim_throughput");

    const int requests_per_node = smoke ? 15 : 60;
    const std::vector<int> shard_counts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    const unsigned hw = std::thread::hardware_concurrency();

    core::Table table("Parallel engine throughput "
                      "(ReAct/HotpotQA, 2 QPS/node weak scaling)");
    table.header({"nodes", "requests", "events", "windows",
                  "xshard msgs", "seq events/s", "par events/s",
                  "speedup", "max stall s"});

    bool gates_ok = true;
    double single_thread_eps = 0.0;
    double best_parallel_eps = 0.0;
    double speedup_at_8 = 0.0;

    for (int nodes : shard_counts) {
        const auto seq = core::runShardedCluster(
            makeConfig(nodes, requests_per_node, false));
        const auto par = core::runShardedCluster(
            makeConfig(nodes, requests_per_node, true));
        const auto par2 = core::runShardedCluster(
            makeConfig(nodes, requests_per_node, true));

        if (!(digestOf(par) == digestOf(seq))) {
            std::fprintf(stderr,
                         "error: %d-node parallel run diverged from "
                         "sequential run (determinism contract)\n",
                         nodes);
            gates_ok = false;
        }
        if (!(digestOf(par) == digestOf(par2))) {
            std::fprintf(stderr,
                         "error: %d-node parallel run not "
                         "run-to-run deterministic\n",
                         nodes);
            gates_ok = false;
        }

        double max_stall = 0.0;
        for (const auto &node : par.nodes)
            max_stall = std::max(max_stall,
                                 node.shardStats.stallSeconds);
        const double speedup =
            par.eventsPerSecond > 0 && single_thread_eps > 0
                ? par.eventsPerSecond / single_thread_eps
                : 1.0;
        if (nodes == 1)
            single_thread_eps = par.eventsPerSecond;
        if (nodes == 8)
            speedup_at_8 = speedup;
        best_parallel_eps =
            std::max(best_parallel_eps, par.eventsPerSecond);

        table.row({std::to_string(nodes),
                   std::to_string(par.completed),
                   core::fmtCount(static_cast<double>(par.totalEvents)),
                   std::to_string(par.windowsExecuted),
                   std::to_string(par.crossShardMessages),
                   core::fmtCount(seq.eventsPerSecond),
                   core::fmtCount(par.eventsPerSecond),
                   sim::strfmt("%.2fx", speedup),
                   sim::strfmt("%.3f", max_stall)});

        auto &rep = telemetry.report();
        const std::string prefix =
            "sim_shards_" + std::to_string(nodes);
        rep.set(prefix + "_events_per_second", par.eventsPerSecond);
        rep.set(prefix + "_seq_events_per_second",
                seq.eventsPerSecond);
        rep.set(prefix + "_windows",
                static_cast<double>(par.windowsExecuted));
        rep.set(prefix + "_cross_shard_messages",
                static_cast<double>(par.crossShardMessages));
        rep.set(prefix + "_max_stall_seconds", max_stall);
    }
    table.print();

    std::printf("\nHost hardware threads: %u%s\n", hw,
                hw < 8 ? " (speedup gate disarmed — needs >= 8)"
                       : "");

    // Headline metric for the perf floor gate (scripts/verify.sh):
    // the best parallel throughput this host achieved.
    telemetry.report().set("sim_events_per_second", best_parallel_eps);
    telemetry.report().set("sim_speedup_8_shards", speedup_at_8);

    if (!gates_ok) {
        std::fprintf(stderr, "error: determinism gates failed\n");
        return 1;
    }
    std::printf("Determinism: parallel == sequential and run-to-run "
                "bit-identical at every shard count.\n");

    if (!smoke && hw >= 8 && speedup_at_8 < 4.0) {
        std::fprintf(stderr,
                     "error: 8-shard speedup %.2fx below the 4x "
                     "acceptance gate on a %u-thread host\n",
                     speedup_at_8, hw);
        return 1;
    }

    if (!telemetry.write())
        return 1;
    return 0;
}
