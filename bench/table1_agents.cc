/**
 * @file
 * Table I — comparison of AI agents: the capability matrix.
 */

#include "common.hh"

int
main()
{
    using namespace benchutil;

    core::Table t("Table I: Comparison of AI agents");
    t.header({"Agent", "Reasoning", "Tool Use", "Reflection",
              "Tree Search", "Structured Planning"});
    auto mark = [](bool b) { return std::string(b ? "O" : "X"); };
    for (AgentKind kind : agents::allAgents) {
        const auto cap = agents::capabilities(kind);
        t.row({std::string(agents::agentName(kind)),
               mark(cap.reasoning), mark(cap.toolUse),
               mark(cap.reflection), mark(cap.treeSearch),
               mark(cap.structuredPlanning)});
    }
    t.print();
    return 0;
}
