/**
 * @file
 * Table I — comparison of AI agents: the capability matrix.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("table1_agents");

    core::Table t("Table I: Comparison of AI agents");
    t.header({"Agent", "Reasoning", "Tool Use", "Reflection",
              "Tree Search", "Structured Planning"});
    auto mark = [](bool b) { return std::string(b ? "O" : "X"); };
    for (AgentKind kind : agents::allAgents) {
        const auto cap = agents::capabilities(kind);
        t.row({std::string(agents::agentName(kind)),
               mark(cap.reasoning), mark(cap.toolUse),
               mark(cap.reflection), mark(cap.treeSearch),
               mark(cap.structuredPlanning)});
    }
    t.print();
    if (!telemetry.write())
        return 1;
    return 0;
}
