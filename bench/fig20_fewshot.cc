/**
 * @file
 * Fig 20 — latency and accuracy vs the number of few-shot examples in
 * ReAct: accuracy first rises then flattens (and can regress); average
 * latency *falls* with good examples because the agent needs fewer
 * reasoning steps despite the longer prompt.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig20_fewshot");

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::Math}) {
        core::Table t("Fig 20: Few-shot sweep — ReAct on " +
                      std::string(workload::benchmarkName(bench)));
        t.header({"Examples", "Accuracy", "Avg latency",
                  "Avg LLM calls", "Acc/latency (1/s)", "Marker"});

        struct Row
        {
            int examples;
            double acc, avg, calls, eff;
        };
        std::vector<Row> rows;
        for (int fs : {0, 1, 2, 3, 4, 6, 8, 10, 12}) {
            auto cfg = defaultProbe(AgentKind::ReAct, bench);
            cfg.agentConfig.fewShotExamples = fs;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            rows.push_back({fs, r.accuracy(), r.e2eSeconds().mean(),
                            r.meanLlmCalls(),
                            r.accuracy() / r.e2eSeconds().mean()});
        }
        std::size_t best_acc = 0;
        std::size_t best_eff = 0;
        for (std::size_t i = 1; i < rows.size(); ++i) {
            if (rows[i].acc > rows[best_acc].acc)
                best_acc = i;
            if (rows[i].eff > rows[best_eff].eff)
                best_eff = i;
        }
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::string marker;
            if (i == best_acc)
                marker += "max-accuracy ";
            if (i == best_eff)
                marker += "peak-efficiency";
            t.row({core::fmtCount(rows[i].examples),
                   core::fmtPercent(rows[i].acc),
                   core::fmtSeconds(rows[i].avg),
                   core::fmtDouble(rows[i].calls, 1),
                   core::fmtDouble(rows[i].eff, 4), marker});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Paper reference: a few well-chosen examples improve "
                "accuracy AND latency (fewer steps beat longer "
                "prompts); excessive prompting regresses.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
