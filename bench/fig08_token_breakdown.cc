/**
 * @file
 * Fig 8 — breakdown of input and output tokens in LLM inference:
 * per-call average token counts by segment kind (instruction,
 * few-shot, user, LLM history, tool history, output).
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig08_token_breakdown");

    core::Table t("Fig 8: Input/output token breakdown per LLM call");
    t.header({"Benchmark", "Agent", "Instr", "Few-shot", "User",
              "LLM hist", "Tool hist", "Output"});

    for (const auto &[agent, bench] : supportedPairs()) {
        auto r_cfg = defaultProbe(agent, bench);
        telemetry.apply(r_cfg);
        const auto r = core::runProbe(r_cfg);
        agents::CallTokens totals;
        std::int64_t calls = 0;
        for (const auto &req : r.requests) {
            totals += req.result.tokens;
            calls += req.result.llmCalls;
        }
        const double c = static_cast<double>(calls);
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtCount(totals.instruction / c),
               core::fmtCount(totals.fewShot / c),
               core::fmtCount(totals.user / c),
               core::fmtCount(totals.llmHistory / c),
               core::fmtCount(totals.toolHistory / c),
               core::fmtCount(totals.output / c)});
    }
    t.print();

    std::printf("\nPaper reference: tool-augmented agents consume more "
                "input but fewer output tokens per call than CoT; "
                "LATS keeps contexts short (path-only history) but "
                "samples many outputs.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
