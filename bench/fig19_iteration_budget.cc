/**
 * @file
 * Fig 19 — latency and accuracy vs the maximum iteration budget in
 * ReAct: accuracy and average latency saturate while p95 keeps
 * climbing; markers flag the max-accuracy and peak cost-efficiency
 * budgets.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig19_iteration_budget");

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::WebShop}) {
        core::Table t("Fig 19: Iteration-budget sweep — ReAct on " +
                      std::string(workload::benchmarkName(bench)));
        t.header({"Max iters", "Accuracy", "Avg latency",
                  "p95 latency", "Acc/latency (1/s)", "Marker"});

        struct Row
        {
            int iters;
            double acc, avg, p95, eff;
        };
        std::vector<Row> rows;
        for (int iters : {1, 2, 3, 4, 5, 6, 7, 8, 10, 12}) {
            auto cfg = defaultProbe(AgentKind::ReAct, bench);
            cfg.agentConfig.maxIterations = iters;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            const auto e2e = r.e2eSeconds();
            rows.push_back({iters, r.accuracy(), e2e.mean(),
                            e2e.percentile(95),
                            r.accuracy() / e2e.mean()});
        }
        std::size_t best_acc = 0;
        std::size_t best_eff = 0;
        for (std::size_t i = 1; i < rows.size(); ++i) {
            if (rows[i].acc > rows[best_acc].acc)
                best_acc = i;
            if (rows[i].eff > rows[best_eff].eff)
                best_eff = i;
        }
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::string marker;
            if (i == best_acc)
                marker += "max-accuracy ";
            if (i == best_eff)
                marker += "peak-efficiency";
            t.row({core::fmtCount(rows[i].iters),
                   core::fmtPercent(rows[i].acc),
                   core::fmtSeconds(rows[i].avg),
                   core::fmtSeconds(rows[i].p95),
                   core::fmtDouble(rows[i].eff, 4), marker});
        }
        t.print();
        std::printf("p95 grows %.1fx from budget 1 to 12 while "
                    "accuracy grows %.1fx — outliers burn the budget "
                    "without matching gains.\n\n",
                    rows.back().p95 / rows.front().p95,
                    rows.back().acc /
                        std::max(0.01, rows.front().acc));
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
