/**
 * @file
 * Tail blame — where the p95 goes vs where the mean goes, at the
 * iteration-budget knee of Fig 19 (ReAct, HotpotQA, maxIterations=8)
 * under open-loop load near saturation.
 *
 * Every request collects a causal span tree; the critical-path
 * extractor collapses each to a blame vector. The mean request is
 * dominated by decode (the agent's own token generation), while the
 * p95 request is dominated by waiting — queue episodes and tool calls
 * stacked across iterations — which no mean-based accounting surfaces.
 * Full trees are retained only for the tail exemplars, so memory stays
 * bounded no matter how many requests the sweep serves.
 *
 * `--smoke` shrinks the run for CI. The usual --trace/--metrics/--csv
 * flags emit the session artifacts, including the exemplar span track.
 */

#include <cstdio>
#include <cstring>

#include "common.hh"
#include "core/bottleneck_report.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("tail_blame");
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    ServeConfig cfg;
    cfg.agent = AgentKind::ReAct;
    cfg.bench = Benchmark::HotpotQA;
    cfg.agentConfig.maxIterations = 8;
    cfg.engineConfig = core::enginePreset8b();
    // A bounded running batch makes admission an actual queue
    // (unbounded, overload shows up only as decode-time inflation and
    // the queue category never fires).
    cfg.engineConfig.maxRunningSeqs = 24;
    cfg.qps = 2.0;
    cfg.numRequests = smoke ? 40 : 120;
    cfg.seed = kSeed;
    telemetry.apply(cfg);

    // The blame pipeline is this bench's subject, so collect spans
    // into a local collector regardless of the CLI flags (after
    // apply(), so it also feeds the session's exports).
    telemetry::SpanCollector::Config span_cfg;
    span_cfg.maxExemplars = 16;
    span_cfg.sloLatencySeconds = 30.0;
    telemetry::SpanCollector spans(span_cfg);
    cfg.spans = &spans;

    const auto r = core::runServing(cfg);

    core::renderBlameTable(spans,
                           "Tail blame — ReAct/HotpotQA at the "
                           "iteration-budget knee")
        .print();

    using telemetry::BlameCategory;
    const telemetry::BlameAggregate *agg = nullptr;
    for (const auto &a : spans.aggregates()) {
        if (a.requests > 0 && (agg == nullptr ||
                               a.requests > agg->requests))
            agg = &a;
    }
    if (agg == nullptr) {
        std::fprintf(stderr, "error: no blame aggregates collected\n");
        return 1;
    }

    auto share = [&](BlameCategory cat, bool tail) {
        const double denom = tail ? agg->latencyP95.value()
                                  : agg->meanLatency();
        const double v = tail ? agg->p95Blame(cat)
                              : agg->meanBlame(cat);
        return denom > 0.0 ? v / denom : 0.0;
    };
    std::printf("\nBlame shares (of %s latency):\n", agg->workflow.c_str());
    std::printf("  %-10s %8s %8s\n", "category", "mean", "p95");
    for (std::size_t i = 0; i < telemetry::kBlameCategories; ++i) {
        const auto cat = static_cast<BlameCategory>(i);
        std::printf("  %-10s %7.1f%% %7.1f%%\n",
                    telemetry::blameCategoryName(cat),
                    100.0 * share(cat, false),
                    100.0 * share(cat, true));
    }

    const double mean_decode = share(BlameCategory::Decode, false);
    const double mean_wait = share(BlameCategory::Queue, false) +
                             share(BlameCategory::Tool, false);
    const double p95_decode = share(BlameCategory::Decode, true);
    const double p95_wait = share(BlameCategory::Queue, true) +
                            share(BlameCategory::Tool, true);
    std::printf("\nMean request: decode %.1f%% vs queue+tool %.1f%%; "
                "p95 request: decode %.1f%% vs queue+tool %.1f%% — "
                "the tail is %s.\n",
                100.0 * mean_decode, 100.0 * mean_wait,
                100.0 * p95_decode, 100.0 * p95_wait,
                p95_wait > p95_decode ? "wait-dominated"
                                      : "decode-dominated");
    std::printf("Tail exemplars: %zu retained (cap %zu), %lld "
                "candidates evicted; %lld requests finished.\n",
                spans.exemplars().size(), spans.config().maxExemplars,
                static_cast<long long>(spans.exemplarsEvicted()),
                static_cast<long long>(spans.requestsFinished()));

    if (spans.exemplars().size() > spans.config().maxExemplars) {
        std::fprintf(stderr,
                     "error: exemplar retention exceeded its cap\n");
        return 1;
    }
    if (telemetry.reportRequested()) {
        reportServePoint(telemetry.report(), "tail_blame", r);
        telemetry.report().set("tail_blame_p95_wait_share", p95_wait);
        telemetry.report().set("tail_blame_mean_decode_share",
                               mean_decode);
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
