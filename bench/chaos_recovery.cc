/**
 * @file
 * Episode recovery under chaos — checkpoint-resume vs full-retry on
 * the chaos_slo crash schedule. The paper's §V finding (p95 climbs
 * 8.5x with iteration budget) makes agent episodes long and deep, so
 * a node crash near the end of a rollout throws away almost the whole
 * episode of GPU work under PR 2's restart-from-scratch retry. This
 * bench runs the same seeded fault schedule twice — checkpointing off
 * (baseline) and on — and compares recomputed GPU-seconds, goodput
 * and tail latency.
 *
 *   chaos_recovery [--trace out.json] [--metrics out.prom]
 *                  [--report out.json] [--smoke]
 *
 * Gates (exit non-zero on violation):
 *  - the injected fault schedule is identical across the two runs
 *    (checkpointing must not perturb the fault/retry streams);
 *  - checkpoint-resume cuts recomputed GPU-seconds by >= 50%;
 *  - goodput does not regress vs the full-retry baseline.
 *
 * The cost report prints attributed episode cost with the RECOVERED
 * footer rows splitting saved work by failure cause. --smoke shrinks
 * the run for CI (the asan chaos job runs it on every push).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common.hh"
#include "core/cluster.hh"
#include "core/cost_report.hh"
#include "sim/strfmt.hh"

namespace
{

using namespace benchutil;

core::ClusterConfig
baseConfig(bool smoke)
{
    core::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;

    core::WorkloadSpec react_hotpot;
    react_hotpot.agent = AgentKind::ReAct;
    react_hotpot.bench = Benchmark::HotpotQA;
    cfg.mix.push_back(react_hotpot);

    core::WorkloadSpec reflexion_shop;
    reflexion_shop.agent = AgentKind::Reflexion;
    reflexion_shop.bench = Benchmark::WebShop;
    cfg.mix.push_back(reflexion_shop);

    core::WorkloadSpec chat;
    chat.chatbot = true;
    cfg.mix.push_back(chat);

    cfg.qps = 3.0;
    cfg.numRequests = smoke ? 60 : 150;
    cfg.seed = kSeed;

    // The chaos_slo crash schedule's hostile point: one crash per
    // node-minute, five-second restarts. Deep rollouts routinely die
    // mid-flight.
    cfg.faults.nodeMtbfSeconds = 60.0;
    cfg.faults.nodeRestartMeanSeconds = 5.0;
    return cfg;
}

core::ClusterConfig
recoveryConfig(bool smoke, int every_iterations)
{
    auto cfg = baseConfig(smoke);
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.everyIterations = every_iterations;
    cfg.checkpoint.minIterations = 1;
    return cfg;
}

void
addRow(core::Table &table, const char *label,
       const core::ClusterResult &r)
{
    table.row(
        {label,
         core::fmtCount(static_cast<double>(r.faultStats.crashes)),
         core::fmtCount(r.retries),
         core::fmtCount(static_cast<double>(r.recovery.resumes)),
         core::fmtSeconds(r.recovery.lostGpuSeconds),
         core::fmtSeconds(r.recovery.recoveredGpuSeconds),
         core::fmtPercent(r.goodputFraction()),
         core::fmtSeconds(r.p95()), core::fmtSeconds(r.p99())});
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("chaos_recovery");

    core::Table table("Chaos recovery: checkpoint-resume vs "
                      "full-retry (same seeded crash schedule)");
    table.header({"Config", "Crashes", "Retries", "Resumes",
                  "Recomputed", "Recovered", "Goodput", "p95", "p99"});

    // Baseline: PR 2's retry discipline — every retryable failure
    // replays the episode from scratch on the next pick.
    const auto base = core::runCluster(baseConfig(smoke));
    addRow(table, "full-retry", base);

    // Checkpoint-resume, journaling every completed iteration. The
    // telemetry session captures this run.
    auto ckpt_cfg = recoveryConfig(smoke, /*every_iterations=*/1);
    telemetry.apply(ckpt_cfg);
    const auto ckpt = core::runCluster(ckpt_cfg);
    addRow(table, "checkpoint k=1", ckpt);

    // Policy-knob sweep: journal every k-th iteration — less snapshot
    // bandwidth, more replayed tail per crash.
    if (!smoke) {
        for (int k : {2, 4}) {
            const auto r =
                core::runCluster(recoveryConfig(smoke, k));
            addRow(table,
                   sim::strfmt("checkpoint k=%d", k).c_str(), r);
        }
    }
    table.print();

    std::printf(
        "\nCheckpoint store: %lld snapshots, %.1f MB journaled "
        "(delta), %.3f s background write, %lld resumes (%lld KV "
        "restores, %lld cold fallbacks, %.3f s restore wire).\n",
        static_cast<long long>(ckpt.recovery.checkpointsTaken),
        static_cast<double>(ckpt.recovery.bytesWritten) / 1e6,
        ckpt.recovery.snapshotSeconds,
        static_cast<long long>(ckpt.recovery.resumes),
        static_cast<long long>(ckpt.recovery.kvRestores),
        static_cast<long long>(ckpt.recovery.coldFallbacks),
        ckpt.recovery.restoreSeconds);

    // Attributed episode cost with the per-cause recovered-work
    // footer (satellite: cost report surfaces what resume saved).
    core::CostReport cost;
    cost.add("episodes (full-retry)", base.episodeCost,
             base.completed);
    cost.add("episodes (checkpoint)", ckpt.episodeCost,
             ckpt.completed);
    cost.addRecoveredGpuSeconds(
        "crash", ckpt.recovery.recoveredCrashGpuSeconds);
    cost.addRecoveredGpuSeconds(
        "shed", ckpt.recovery.recoveredShedGpuSeconds);
    cost.render("Episode cost attribution").print();

    const double lost_base = base.recovery.lostGpuSeconds;
    const double lost_ckpt = ckpt.recovery.lostGpuSeconds;
    const double reduction =
        lost_base > 0.0 ? 1.0 - lost_ckpt / lost_base : 0.0;
    std::printf("\nRecomputed GPU-seconds: %.3f -> %.3f (%.0f%% "
                "reduction); goodput %.1f%% -> %.1f%%.\n",
                lost_base, lost_ckpt, reduction * 100.0,
                base.goodputFraction() * 100.0,
                ckpt.goodputFraction() * 100.0);

    if (telemetry.reportRequested()) {
        auto &rep = telemetry.report();
        rep.set("baseline_lost_gpu_seconds", lost_base);
        rep.set("recovery_lost_gpu_seconds", lost_ckpt);
        rep.set("recovery_recovered_gpu_seconds",
                ckpt.recovery.recoveredGpuSeconds);
        rep.set("baseline_goodput", base.goodputFraction());
        rep.set("recovery_goodput", ckpt.goodputFraction());
        rep.set("recovery_resumes",
                static_cast<double>(ckpt.recovery.resumes));
        rep.set("recovery_checkpoints",
                static_cast<double>(ckpt.recovery.checkpointsTaken));
        rep.set("recovery_p99_seconds", ckpt.p99());
    }
    if (!telemetry.write())
        return 1;

    // --- Gates. ----------------------------------------------------
    // Fault determinism: a faster (resumed) run may drain before the
    // last crash fires, but every crash both runs lived through must
    // land on the identical sim time.
    const auto &crash_base = base.faultStats.crashSeconds;
    const auto &crash_ckpt = ckpt.faultStats.crashSeconds;
    const std::size_t common =
        std::min(crash_base.size(), crash_ckpt.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (crash_base[i] != crash_ckpt[i]) {
            std::fprintf(stderr,
                         "error: crash %zu moved (%.6f s vs %.6f s) "
                         "— checkpointing perturbed the fault "
                         "streams\n",
                         i, crash_base[i], crash_ckpt[i]);
            return 1;
        }
    }
    if (common == 0 ||
        base.faultStats.stallSecondsInjected !=
            ckpt.faultStats.stallSecondsInjected) {
        std::fprintf(stderr, "error: fault schedules do not overlap "
                             "or stall totals diverged\n");
        return 1;
    }
    if (base.recovery.recoveredGpuSeconds != 0.0) {
        std::fprintf(stderr,
                     "error: baseline run reports recovered work "
                     "with checkpointing disabled\n");
        return 1;
    }
    if (lost_base > 0.0 && lost_ckpt > 0.5 * lost_base) {
        std::fprintf(stderr,
                     "error: recomputed GPU-seconds %.3f > 50%% of "
                     "the full-retry baseline %.3f\n",
                     lost_ckpt, lost_base);
        return 1;
    }
    if (ckpt.goodputFraction() < base.goodputFraction()) {
        std::fprintf(stderr,
                     "error: goodput regressed vs full-retry "
                     "(%.3f < %.3f)\n",
                     ckpt.goodputFraction(), base.goodputFraction());
        return 1;
    }
    return 0;
}
