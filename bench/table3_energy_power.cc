/**
 * @file
 * Table III — energy and power demands of AI agent serving on
 * HotpotQA: accuracy, latency, per-query GPU energy, and
 * datacenter-wide power at today's (71.4 M queries/day) and
 * tomorrow's (13.7 B queries/day) traffic, for ShareGPT (single-turn
 * baseline), Reflexion (sequential scaling) and LATS (parallel
 * scaling) on Llama-3.1 8B and 70B. Agent design points are the
 * highest-accuracy configurations from the Fig 22 sweeps.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace benchutil;

struct Entry
{
    std::string name;
    double accuracy = -1.0; // <0: not applicable
    double latency = 0.0;
    double whPerQuery = 0.0;
};

/** Highest-accuracy point of an agent's Fig 22 scaling sweep. */
Entry
bestAgentPoint(AgentKind agent, bool use70b)
{
    const std::vector<int> levels =
        agent == AgentKind::Reflexion
            ? std::vector<int>{0, 1, 2, 4, 8, 16}
            : std::vector<int>{1, 2, 4, 8, 16};
    Entry best;
    for (int level : levels) {
        auto cfg = defaultProbe(agent, Benchmark::HotpotQA, true,
                                use70b, 30);
        if (agent == AgentKind::Reflexion)
            cfg.agentConfig.maxReflections = level;
        else
            cfg.agentConfig.latsChildren = level;
        const auto r = core::runProbe(cfg);
        if (r.accuracy() > best.accuracy) {
            best.accuracy = r.accuracy();
            best.latency = r.e2eSeconds().mean();
            best.whPerQuery = r.meanEnergyWh();
        }
    }
    best.name = std::string(agents::agentName(agent));
    return best;
}

Entry
shareGptPoint(bool use70b)
{
    const int n = 100;
    const auto r = shareGptClosedLoop(n, use70b);
    Entry e;
    e.name = "ShareGPT";
    e.latency = r.e2eSeconds.mean();
    e.whPerQuery = r.energyWh / n;
    return e;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("table3_energy_power");

    core::Table t("Table III: Energy and power demands of agent "
                  "serving (HotpotQA)");
    t.header({"Model", "Workflow", "Accuracy", "Latency (x)",
              "Wh/query (x)", "Power @71.4M q/day",
              "Power @13.7B q/day"});

    for (bool use70b : {false, true}) {
        const Entry baseline = shareGptPoint(use70b);
        std::vector<Entry> entries{baseline,
                                   bestAgentPoint(
                                       AgentKind::Reflexion, use70b),
                                   bestAgentPoint(AgentKind::Lats,
                                                  use70b)};
        for (const auto &e : entries) {
            const double lat_x = e.latency / baseline.latency;
            const double wh_x = e.whPerQuery / baseline.whPerQuery;
            t.row({use70b ? "70B" : "8B", e.name,
                   e.accuracy < 0 ? "-"
                                  : core::fmtPercent(e.accuracy, 0),
                   core::fmtSeconds(e.latency) + " (" +
                       core::fmtDouble(lat_x, 1) + "x)",
                   core::fmtDouble(e.whPerQuery, 2) + " (" +
                       core::fmtDouble(wh_x, 1) + "x)",
                   core::fmtEng(energy::datacenterPowerWatts(
                                    e.whPerQuery,
                                    energy::chatGptDailyQueries),
                                "W"),
                   core::fmtEng(energy::datacenterPowerWatts(
                                    e.whPerQuery,
                                    energy::googleDailyQueries),
                                "W")});
        }
    }
    t.print();

    std::printf(
        "\nContext: paper reports agents at 62-137x the per-query "
        "energy of single-turn inference; ~100 Wh/query turns tens of "
        "millions of daily queries into gigawatt-scale demand. For "
        "scale: Seattle uses %.1f GWh/day; the average U.S. grid load "
        "is %.0f GW.\n",
        energy::seattleDailyGWh, energy::usGridAverageGW);
    if (!telemetry.write())
        return 1;
    return 0;
}
