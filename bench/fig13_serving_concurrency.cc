/**
 * @file
 * §IV-C (serving system, Fig 13) — the importance of concurrent
 * request scheduling: sequential vs concurrent execution of ReAct
 * agents on HotpotQA and WebShop.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig13_serving_concurrency");

    core::Table t("Fig 13 / §IV-C: Sequential vs concurrent agent "
                  "serving (ReAct)");
    t.header({"Benchmark", "Mode", "Avg latency", "Throughput (QPS)",
              "Speedup"});

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::WebShop}) {
        ServeConfig seq;
        seq.agent = AgentKind::ReAct;
        seq.bench = bench;
        seq.engineConfig = core::enginePreset8b();
        seq.closedLoop = true;
        seq.numRequests = 40;
        seq.seed = kSeed;
        telemetry.apply(seq);
        const auto r_seq = core::runServing(seq);

        ServeConfig con = seq;
        con.closedLoop = false;
        // Offer enough load to saturate the engine.
        con.qps = bench == Benchmark::HotpotQA ? 3.0 : 2.0;
        con.numRequests = 120;
        telemetry.apply(con);
        const auto r_con = core::runServing(con);

        t.row({std::string(workload::benchmarkName(bench)),
               "sequential",
               core::fmtSeconds(r_seq.e2eSeconds.mean()),
               core::fmtDouble(r_seq.throughputQps(), 2), "1.0x"});
        t.row({std::string(workload::benchmarkName(bench)),
               "concurrent",
               core::fmtSeconds(r_con.e2eSeconds.mean()),
               core::fmtDouble(r_con.throughputQps(), 2),
               core::fmtDouble(r_con.throughputQps() /
                                   r_seq.throughputQps(),
                               1) +
                   "x"});
    }
    t.print();

    std::printf("\nPaper reference: concurrency lifts ReAct throughput "
                "25x (HotpotQA) and 6.2x (WebShop) at a 2.1x average "
                "latency cost; HotpotQA gains more because slow "
                "Wikipedia calls leave the GPU idle for overlap.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
