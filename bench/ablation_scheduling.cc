/**
 * @file
 * Ablation (keytakeaway #7) — waiting-queue admission policy: FCFS
 * (the paper's vLLM default) vs shortest-prompt-first, under mixed
 * chatbot load whose prompt sizes vary widely. SJF-style admission
 * trims median latency for short requests at some tail fairness cost.
 */

#include <cstdio>

#include "common.hh"
#include "core/cluster.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_scheduling");

    core::Table t("Ablation: admission scheduling policy "
                  "(ShareGPT, heavy load)");
    t.header({"Policy", "QPS", "p50", "p95", "Mean", "Throughput"});

    for (double qps : {4.0, 6.0}) {
        for (auto policy :
             {serving::SchedulerPolicy::Fcfs,
              serving::SchedulerPolicy::ShortestPromptFirst,
              serving::SchedulerPolicy::LeastAttainedService}) {
            ServeConfig cfg;
            cfg.chatbot = true;
            cfg.engineConfig = core::enginePreset8b();
            cfg.engineConfig.schedulerPolicy = policy;
            // A bounded running batch makes admission order matter
            // (otherwise everything is admitted immediately and the
            // policies coincide).
            cfg.engineConfig.maxRunningSeqs = 12;
            cfg.qps = qps;
            cfg.numRequests = 200;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            const char *policy_name =
                policy == serving::SchedulerPolicy::Fcfs
                    ? "FCFS"
                : policy == serving::SchedulerPolicy::
                                ShortestPromptFirst
                    ? "shortest-prompt-first"
                    : "least-attained-service";
            t.row({policy_name,
                   core::fmtDouble(qps, 1), core::fmtSeconds(r.p50()),
                   core::fmtSeconds(r.p95()),
                   core::fmtSeconds(r.e2eSeconds.mean()),
                   core::fmtDouble(r.throughputQps(), 2)});
        }
    }
    t.print();

    // Program-aware scheduling on a *mixed* workload (Autellix [23]):
    // every agent rollout issues many calls under one session id.
    // Least-attained-service lets fresh single-call chat requests
    // jump ahead of heavily-served agent programs, protecting the
    // short workload's latency in shared serving.
    core::Table t2("Ablation: program-aware scheduling "
                   "(mixed chat + ReAct agents, one node)");
    t2.header({"Policy", "Chat p50", "Chat p95", "Agent p50",
               "Agent p95", "Overall mean"});
    for (auto policy :
         {serving::SchedulerPolicy::Fcfs,
          serving::SchedulerPolicy::LeastAttainedService}) {
        core::ClusterConfig cfg;
        cfg.numNodes = 1;
        cfg.engineConfig = core::enginePreset8b();
        cfg.engineConfig.schedulerPolicy = policy;
        cfg.engineConfig.maxRunningSeqs = 8;
        cfg.policy = core::RoutePolicy::RoundRobin;
        core::WorkloadSpec chat;
        chat.chatbot = true;
        chat.weight = 2.0;
        cfg.mix.push_back(chat);
        core::WorkloadSpec agent;
        agent.agent = AgentKind::ReAct;
        agent.bench = Benchmark::HotpotQA;
        agent.weight = 1.0;
        cfg.mix.push_back(agent);
        cfg.qps = 2.5;
        cfg.numRequests = 180;
        cfg.seed = kSeed;
        telemetry.apply(cfg);
        const auto r = core::runCluster(cfg);
        const auto &chat_lat = r.perWorkloadSeconds[0];
        const auto &agent_lat = r.perWorkloadSeconds[1];
        t2.row({policy == serving::SchedulerPolicy::Fcfs
                    ? "FCFS"
                    : "least-attained-service",
                core::fmtSeconds(chat_lat.percentile(50)),
                core::fmtSeconds(chat_lat.percentile(95)),
                core::fmtSeconds(agent_lat.percentile(50)),
                core::fmtSeconds(agent_lat.percentile(95)),
                core::fmtSeconds(r.e2eSeconds.mean())});
    }
    t2.print();

    std::printf("\nDesign note: the paper's keytakeaway #7 calls for "
                "agent-aware scheduling; this ablation quantifies "
                "both the engine-level policy choice and the "
                "program-aware LAS policy of the cited Autellix "
                "system.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
