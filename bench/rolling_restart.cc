/**
 * @file
 * Rolling-restart sweep — what planned node churn costs an agentic
 * serving cluster, and what graceful drain + live KV migration buys
 * back. A 3-node cluster serves the paper's mixed agent + chatbot
 * workload while a maintenance schedule takes nodes out of service
 * round-robin; the sweep crosses offered load with the takedown
 * discipline:
 *
 *   crash         hard restart: in-flight requests dropped, KV lost;
 *                 clients retry from scratch on a cache-cold peer.
 *   drain         admissions stop, running requests finish up to a
 *                 deadline, leftovers are cancelled (crash semantics).
 *   drain+migrate leftovers live-migrate: the KV chain crosses the
 *                 interconnect and decode resumes warm on the target.
 *
 * Reported per point: goodput, wasted GPU-s (recompute waste + prefill
 * thrown away with cancelled requests), migration traffic, TTFT/E2E
 * attainment, tail latency, breaker and brownout activity. Health-
 * aware routing and the overload brownout are on throughout, so the
 * Chrome trace of the last point (--trace) shows breaker transitions
 * and brownout level changes alongside drain/migration instants.
 *
 *   rolling_restart [--trace out.json] [--metrics out.prom]
 *                   [--report out.json]
 */

#include <cstdio>

#include "common.hh"
#include "core/cluster.hh"
#include "sim/strfmt.hh"
#include "telemetry/slo.hh"

namespace
{

using namespace benchutil;

core::ClusterConfig
baseConfig()
{
    core::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;

    core::WorkloadSpec react_hotpot;
    react_hotpot.agent = AgentKind::ReAct;
    react_hotpot.bench = Benchmark::HotpotQA;
    cfg.mix.push_back(react_hotpot);

    core::WorkloadSpec reflexion_shop;
    reflexion_shop.agent = AgentKind::Reflexion;
    reflexion_shop.bench = Benchmark::WebShop;
    cfg.mix.push_back(reflexion_shop);

    core::WorkloadSpec chat;
    chat.chatbot = true;
    cfg.mix.push_back(chat);

    cfg.numRequests = 150;
    cfg.seed = kSeed;

    // Chat requests carry an SLO deadline, so decode progress lost to
    // a hard restart is not free: the retry may no longer make it.
    cfg.chatDeadlineSeconds = 90.0;

    // One node leaves service every 20 s — an aggressive rolling
    // deploy, so every sweep point sees several cycles. The short
    // drain deadline leaves real in-flight work for the migrator.
    cfg.maintenance.periodSeconds = 20.0;
    cfg.maintenance.drainDeadlineSeconds = 2.0;
    cfg.maintenance.downtimeSeconds = 5.0;
    return cfg;
}

telemetry::SloConfig
sloConfig()
{
    telemetry::SloConfig slo;
    slo.ttftTargetSeconds = 15.0;
    slo.tbtTargetSeconds = 0.5;
    slo.e2eTargetSeconds = 120.0;
    slo.windowSeconds = 20.0;
    return slo;
}

/** GPU-s of work destroyed by the takedowns: preemption/migration
 *  recompute waste plus prefill lost with cancelled requests. */
double
wastedGpuSeconds(const core::ClusterResult &r)
{
    double wasted = 0.0;
    for (const auto &node : r.nodes) {
        wasted += node.engineStats.wastedSeconds +
                  node.engineStats.lostPrefillSeconds;
    }
    return wasted;
}

std::string
pointKey(double qps, sim::MaintenanceMode mode)
{
    const char *m = mode == sim::MaintenanceMode::Crash ? "crash"
                    : mode == sim::MaintenanceMode::Drain
                        ? "drain"
                        : "drain_migrate";
    return sim::strfmt("qps_%dp%d_%s", static_cast<int>(qps),
                       static_cast<int>(qps * 10) % 10, m);
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("rolling_restart");

    // --- Sweep 1: takedown discipline vs goodput and waste. --------
    // Brownout stays off here so every mode faces the identical
    // offered work; its effect is isolated in sweep 2.
    core::Table table("Rolling restarts: crash vs drain vs "
                      "drain+migrate (3 nodes, 20s period)");
    table.header({"QPS", "Mode", "Cycles", "Goodput", "Wasted GPU-s",
                  "Migrated", "Fallbacks", "p50", "p99",
                  "TTFT attain", "Breaker opens"});

    const double qps_points[] = {2.0, 3.0};
    const sim::MaintenanceMode modes[] = {
        sim::MaintenanceMode::Crash,
        sim::MaintenanceMode::Drain,
        sim::MaintenanceMode::DrainMigrate,
    };
    for (double qps : qps_points) {
        for (sim::MaintenanceMode mode : modes) {
            auto cfg = baseConfig();
            cfg.qps = qps;
            cfg.maintenance.mode = mode;
            telemetry::SloTracker slo(sloConfig());
            cfg.slo = &slo;
            const auto r = core::runCluster(cfg);
            table.row(
                {core::fmtCount(qps),
                 std::string(sim::maintenanceModeName(mode)),
                 core::fmtCount(static_cast<double>(
                     r.maintenanceStats.cycles)),
                 core::fmtPercent(r.goodputFraction()),
                 core::fmtSeconds(wastedGpuSeconds(r)),
                 core::fmtCount(
                     static_cast<double>(r.migratedRequests)),
                 core::fmtCount(
                     static_cast<double>(r.migrationFallbacks)),
                 core::fmtSeconds(r.p50()), core::fmtSeconds(r.p99()),
                 core::fmtPercent(
                     slo.attainment(telemetry::SloMetric::Ttft)),
                 core::fmtCount(static_cast<double>(r.breakerOpens))});
            if (telemetry.reportRequested()) {
                const std::string prefix = pointKey(qps, mode);
                auto &rep = telemetry.report();
                rep.set(prefix + "_goodput", r.goodputFraction());
                rep.set(prefix + "_wasted_gpu_seconds",
                        wastedGpuSeconds(r));
                rep.set(prefix + "_p99_seconds", r.p99());
                rep.set(prefix + "_ttft_attainment",
                        slo.attainment(telemetry::SloMetric::Ttft));
                rep.set(prefix + "_migrated",
                        static_cast<double>(r.migratedRequests));
                rep.set(prefix + "_breaker_opens",
                        static_cast<double>(r.breakerOpens));
            }
        }
    }
    table.print();

    // --- Sweep 2: overload brownout under unplanned churn. ---------
    // The rolling deploy keeps running (drain+migrate), but random
    // node crashes land on top of it: retried rollouts saturate the
    // survivors and burn the SLO budget. The brownout watches KV
    // pressure and burn rate and trims test-time-scaling width (then
    // downgrades deadline-less agents) instead of letting whole
    // requests miss deadlines.
    core::Table brownout_table(
        "Overload brownout: drain+migrate deploys + chaos crashes "
        "(QPS 3)");
    brownout_table.header({"Brownout", "Goodput", "Timed out",
                           "Degraded rollouts", "Max level", "p99",
                           "E2E attain"});
    for (bool enabled : {false, true}) {
        auto cfg = baseConfig();
        cfg.qps = qps_points[1];
        cfg.maintenance.mode = sim::MaintenanceMode::DrainMigrate;
        cfg.faults.nodeMtbfSeconds = 40.0;
        cfg.faults.nodeRestartMeanSeconds = 5.0;
        cfg.brownout.enabled = enabled;
        telemetry::SloTracker slo(sloConfig());
        cfg.slo = &slo;
        // Telemetry files capture the brownout-on point: the Chrome
        // trace holds drain/migration instants, breaker transitions
        // and brownout level changes on the resilience track.
        if (enabled)
            telemetry.apply(cfg);
        const auto r = core::runCluster(cfg);
        brownout_table.row(
            {enabled ? "on" : "off",
             core::fmtPercent(r.goodputFraction()),
             core::fmtCount(r.timedOut),
             core::fmtCount(
                 static_cast<double>(r.brownoutDegradedRollouts)),
             core::fmtCount(static_cast<double>(r.brownoutMaxLevel)),
             core::fmtSeconds(r.p99()),
             core::fmtPercent(
                 slo.attainment(telemetry::SloMetric::E2e))});
        if (telemetry.reportRequested()) {
            const std::string prefix = enabled
                                           ? std::string("brownout_on")
                                           : std::string("brownout_off");
            auto &rep = telemetry.report();
            rep.set(prefix + "_goodput", r.goodputFraction());
            rep.set(prefix + "_p99_seconds", r.p99());
            rep.set(prefix + "_degraded_rollouts",
                    static_cast<double>(r.brownoutDegradedRollouts));
        }
    }
    brownout_table.print();

    std::printf(
        "\nDesign note: a hard restart destroys every in-flight "
        "rollout on the node — the client retries from scratch on a "
        "cache-cold peer, so the cluster pays the accumulated "
        "context's prefill twice and the tail pays backoff plus "
        "queueing. Draining first lets most requests finish in "
        "place, and live-migrating the leftovers turns the residual "
        "loss into a bounded interconnect transfer: goodput holds "
        "and the wasted-GPU bill collapses. Health-aware routing "
        "keeps retries off the node being cycled, and the brownout "
        "trims test-time-scaling width instead of shedding whole "
        "requests when the survivors saturate.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
