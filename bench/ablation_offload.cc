/**
 * @file
 * Ablation (keytakeaway #6) — host-memory KV offload: evicted prefix
 * blocks spill to CPU DRAM and restore over PCIe instead of being
 * recomputed. Under a constrained GPU pool, the spill tier recovers
 * much of the lost hit rate at transfer (not recompute) cost.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_offload");

    const auto weight_bytes = llm::llama31_8b().weightBytes();

    core::Table t("Ablation: host-memory KV spill tier "
                  "(ReAct on HotpotQA, constrained GPU pool)");
    t.header({"GPU pool", "Host tier", "GPU hit", "Host restore",
              "p95", "Throughput"});

    for (double frac : {0.15, 0.30}) {
        for (std::int64_t host_blocks : {0L, 100000L}) {
            ServeConfig cfg;
            cfg.agent = AgentKind::ReAct;
            cfg.bench = Benchmark::HotpotQA;
            cfg.engineConfig = core::enginePreset8b();
            cfg.engineConfig.kvPoolBytes = static_cast<std::int64_t>(
                frac * static_cast<double>(weight_bytes));
            cfg.engineConfig.hostCacheBlocks = host_blocks;
            cfg.qps = 1.0;
            cfg.numRequests = 100;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            const auto &cs = r.cacheStats;
            const double restore_rate =
                cs.lookupTokens > 0
                    ? static_cast<double>(cs.restoredTokens) /
                          static_cast<double>(cs.lookupTokens)
                    : 0.0;
            t.row({core::fmtPercent(frac, 0),
                   host_blocks == 0 ? "off" : "CPU DRAM",
                   core::fmtPercent(r.cacheHitRate),
                   core::fmtPercent(restore_rate),
                   core::fmtSeconds(r.p95()),
                   core::fmtDouble(r.throughputQps(), 2)});
        }
    }
    t.print();

    std::printf("\nDesign note: implements the paper's suggestion of "
                "\"offloading all or parts of KV cache contexts to "
                "CPU memory or SSD\" and quantifies its benefit.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
