/**
 * @file
 * Extension — role-based multi-agent collaboration (paper §VII
 * related work: CAMEL, AutoGen): an actor + LLM-critic duo compared
 * against the single-agent workflows it interpolates between. The
 * critic's fallibility is the interesting part: it ships some wrong
 * answers (false accepts) and burns rounds revising correct ones
 * (false rejects), so the duo lands between ReAct and
 * oracle-feedback Reflexion on both accuracy and cost.
 */

#include <cstdio>

#include "common.hh"

int
main()
{
    using namespace benchutil;

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::HumanEval}) {
        core::Table t("Extension: actor-critic duo vs single agents "
                      "— " +
                      std::string(workload::benchmarkName(bench)));
        t.header({"Workflow", "Accuracy", "Mean e2e", "LLM calls",
                  "Energy (Wh)"});
        for (AgentKind agent :
             {AgentKind::ReAct, AgentKind::ActorCritic,
              AgentKind::Reflexion}) {
            const auto r = core::runProbe(defaultProbe(agent, bench));
            t.row({std::string(agents::agentName(agent)),
                   core::fmtPercent(r.accuracy()),
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanLlmCalls(), 1),
                   core::fmtDouble(r.meanEnergyWh(), 2)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Takeaway: collaboration via an internal judge buys "
                "part of Reflexion's gain without environment reward "
                "access, at multi-agent coordination cost — the "
                "workflows the paper's related work points to inherit "
                "the same infrastructure economics.\n");
    return 0;
}
