/**
 * @file
 * Extension — role-based multi-agent collaboration (paper §VII
 * related work: CAMEL, AutoGen): an actor + LLM-critic duo compared
 * against the single-agent workflows it interpolates between. The
 * critic's fallibility is the interesting part: it ships some wrong
 * answers (false accepts) and burns rounds revising correct ones
 * (false rejects), so the duo lands between ReAct and
 * oracle-feedback Reflexion on both accuracy and cost.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ext_multi_agent");

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::HumanEval}) {
        core::Table t("Extension: actor-critic duo vs single agents "
                      "— " +
                      std::string(workload::benchmarkName(bench)));
        t.header({"Workflow", "Accuracy", "Mean e2e", "LLM calls",
                  "Energy (Wh)"});
        for (AgentKind agent :
             {AgentKind::ReAct, AgentKind::ActorCritic,
              AgentKind::Reflexion}) {
            auto r_cfg = defaultProbe(agent, bench);
            telemetry.apply(r_cfg);
            const auto r = core::runProbe(r_cfg);
            t.row({std::string(agents::agentName(agent)),
                   core::fmtPercent(r.accuracy()),
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanLlmCalls(), 1),
                   core::fmtDouble(r.meanEnergyWh(), 2)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Takeaway: collaboration via an internal judge buys "
                "part of Reflexion's gain without environment reward "
                "access, at multi-agent coordination cost — the "
                "workflows the paper's related work points to inherit "
                "the same infrastructure economics.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
