/**
 * @file
 * Ablation (keytakeaway #7) — agent-aware request dispatching across
 * a multi-node cluster: round-robin vs least-loaded vs cache-affinity
 * routing of a mixed workload (two agent types + chatbot traffic).
 * Affinity routing concentrates identical instruction/few-shot
 * prefixes per node, raising every node's prefix hit rate.
 */

#include <cstdio>

#include "common.hh"
#include "core/cluster.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_routing");

    std::vector<core::WorkloadSpec> mix;
    {
        core::WorkloadSpec react_hotpot;
        react_hotpot.agent = AgentKind::ReAct;
        react_hotpot.bench = Benchmark::HotpotQA;
        react_hotpot.weight = 1.0;
        mix.push_back(react_hotpot);

        core::WorkloadSpec reflexion_shop;
        reflexion_shop.agent = AgentKind::Reflexion;
        reflexion_shop.bench = Benchmark::WebShop;
        reflexion_shop.weight = 1.0;
        mix.push_back(reflexion_shop);

        core::WorkloadSpec chat;
        chat.chatbot = true;
        chat.weight = 2.0;
        mix.push_back(chat);
    }

    core::Table t("Ablation: cluster request routing "
                  "(4 nodes, mixed workload)");
    t.header({"Policy", "p50", "p95", "Throughput",
              "Aggregate hit rate", "Per-node requests"});

    for (auto policy : {core::RoutePolicy::RoundRobin,
                        core::RoutePolicy::LeastLoaded,
                        core::RoutePolicy::CacheAffinity}) {
        core::ClusterConfig cfg;
        cfg.numNodes = 4;
        cfg.engineConfig = core::enginePreset8b();
        cfg.policy = policy;
        cfg.mix = mix;
        cfg.qps = 4.0;
        cfg.numRequests = 300;
        cfg.seed = kSeed;
        telemetry.apply(cfg);
        const auto r = core::runCluster(cfg);

        std::string spread;
        for (const auto &node : r.nodes) {
            if (!spread.empty())
                spread += "/";
            spread += core::fmtCount(node.requests);
        }
        t.row({std::string(core::routePolicyName(policy)),
               core::fmtSeconds(r.p50()), core::fmtSeconds(r.p95()),
               core::fmtDouble(r.throughputQps(), 2),
               core::fmtPercent(r.aggregateHitRate()), spread});
    }
    t.print();

    std::printf("\nDesign note: implements the paper's call for "
                "\"agent-aware request dispatching\" — keeping a "
                "workflow's requests on a home node turns the fixed "
                "instruction/few-shot blocks into cross-request "
                "prefix hits instead of duplicating them on every "
                "node.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
