/**
 * @file
 * Fig 15 — p95 latency vs QPS with (solid) and without (dashed)
 * prefix caching: caching barely moves the chatbot but multiplies
 * agent serving throughput.
 *
 * The peak sustainable throughput is read off each curve as the
 * highest achieved QPS whose p95 stays within 2.5x the unloaded
 * (lowest-rate, cache-on) latency — the knee of the curve.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace benchutil;

struct SweepPoint
{
    double offered = 0.0;
    double achieved = 0.0;
    double p95 = 0.0;
    double hitRate = 0.0;
};

std::vector<SweepPoint>
sweep(bool chatbot, Benchmark bench, bool caching,
      const std::vector<double> &qps_points, int requests,
      TelemetryCli &telemetry)
{
    std::vector<SweepPoint> out;
    for (double qps : qps_points) {
        const auto r = serveAt(qps, chatbot, AgentKind::ReAct, bench,
                               requests, caching, 0, &telemetry);
        out.push_back(
            {qps, r.throughputQps(), r.p95(), r.cacheHitRate});
    }
    return out;
}

double
kneeQps(const std::vector<SweepPoint> &points, double base_p95)
{
    double knee = 0.0;
    for (const auto &p : points) {
        if (p.p95 <= 2.5 * base_p95)
            knee = std::max(knee, p.achieved);
    }
    return knee;
}

/** Run one workload, print the curve pair, return the gain. */
double
runWorkload(const char *name, bool chatbot, Benchmark bench,
            const std::vector<double> &qps_points, int requests,
            TelemetryCli &telemetry)
{
    const auto on =
        sweep(chatbot, bench, true, qps_points, requests, telemetry);
    const auto off =
        sweep(chatbot, bench, false, qps_points, requests, telemetry);

    core::Table t(std::string("Fig 15: ") + name +
                  " p95 latency vs QPS");
    t.header({"QPS", "p95 (cache on)", "p95 (cache off)",
              "hit rate (on)"});
    for (std::size_t i = 0; i < on.size(); ++i) {
        t.row({core::fmtDouble(on[i].offered, 2),
               core::fmtSeconds(on[i].p95),
               core::fmtSeconds(off[i].p95),
               core::fmtPercent(on[i].hitRate)});
    }
    t.print();

    const double base = on.front().p95;
    const double peak_on = kneeQps(on, base);
    const double peak_off = kneeQps(off, base);
    const double gain = peak_off > 0 ? peak_on / peak_off : 0.0;
    std::printf("Peak sustainable QPS: %.2f with caching, %.2f "
                "without -> %.2fx\n\n",
                peak_on, peak_off, gain);
    return gain;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig15_prefix_throughput");

    const double chat_gain = runWorkload(
        "Chatbot (ShareGPT)", true, Benchmark::ShareGpt,
        {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, 200, telemetry);
    const double hotpot_gain = runWorkload(
        "Agent ReAct (HotpotQA)", false, Benchmark::HotpotQA,
        {0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0}, 150,
        telemetry);
    const double shop_gain = runWorkload(
        "Agent ReAct (WebShop)", false, Benchmark::WebShop,
        {0.125, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5}, 150, telemetry);

    std::printf("Prefix-caching throughput gain: chatbot %.2fx "
                "(paper: 1.03x), agents %.2fx / %.2fx "
                "(paper: 5.62x average).\n",
                chat_gain, hotpot_gain, shop_gain);
    if (!telemetry.write())
        return 1;
    return 0;
}
