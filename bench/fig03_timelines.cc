/**
 * @file
 * Fig 3 — execution timeline of each AI agent: one HotpotQA request
 * per agent, rendered as an ASCII Gantt strip of LLM (#) and tool (~)
 * activity, with overlap (%) where both are in flight (LLMCompiler).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common.hh"
#include "core/trace_export.hh"

namespace
{

using namespace benchutil;

void
renderTimeline(const agents::AgentResult &r, AgentKind kind)
{
    constexpr int width = 100;
    if (r.timeline.empty())
        return;
    sim::Tick t0 = r.timeline.front().start;
    sim::Tick t1 = 0;
    for (const auto &s : r.timeline) {
        t0 = std::min(t0, s.start);
        t1 = std::max(t1, s.end);
    }
    const double span = static_cast<double>(t1 - t0);
    std::string llm(width, ' ');
    std::string tool(width, ' ');
    for (const auto &s : r.timeline) {
        const int lo = static_cast<int>((s.start - t0) / span * width);
        const int hi = std::max(
            lo + 1, static_cast<int>((s.end - t0) / span * width));
        for (int i = lo; i < hi && i < width; ++i) {
            if (s.kind == agents::Span::Kind::Llm)
                llm[static_cast<std::size_t>(i)] = '#';
            else
                tool[static_cast<std::size_t>(i)] = '~';
        }
    }
    std::string merged(width, '.');
    for (int i = 0; i < width; ++i) {
        const bool l = llm[static_cast<std::size_t>(i)] == '#';
        const bool t = tool[static_cast<std::size_t>(i)] == '~';
        if (l && t)
            merged[static_cast<std::size_t>(i)] = '%';
        else if (l)
            merged[static_cast<std::size_t>(i)] = '#';
        else if (t)
            merged[static_cast<std::size_t>(i)] = '~';
    }
    std::printf("%-12s |%s| %6.1f s  (%d LLM, %d tool calls)\n",
                std::string(agents::agentName(kind)).c_str(),
                merged.c_str(), r.e2eSeconds, r.llmCalls, r.toolCalls);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig03_timelines");

    std::printf("== Fig 3: Execution timeline of each AI agent "
                "(HotpotQA, one request) ==\n");
    std::printf("legend: # LLM inference, ~ tool use, %% overlap, "
                ". agent idle\n\n");
    const char *trace_dir = std::getenv("AGENTSIM_TRACE_DIR");
    bool trace_ok = true;
    for (AgentKind kind : agents::allAgents) {
        auto cfg = defaultProbe(kind, Benchmark::HotpotQA, true, false,
                                /*tasks=*/1);
        telemetry.apply(cfg);
        const auto probe = core::runProbe(cfg);
        renderTimeline(probe.requests.front().result, kind);
        if (trace_dir != nullptr && trace_dir[0] != '\0') {
            const std::string name =
                std::string(agents::agentName(kind));
            if (!core::writeChromeTrace(std::string(trace_dir) +
                                            "/fig03_" + name + ".json",
                                        probe.requests.front().result,
                                        name + " / HotpotQA"))
                trace_ok = false;
        }
    }
    if (!trace_ok) {
        std::fprintf(stderr,
                     "error: failed to write one or more Chrome "
                     "traces under AGENTSIM_TRACE_DIR=%s\n",
                     trace_dir);
        return 1;
    }
    if (trace_dir != nullptr) {
        std::printf("\nChrome traces written to %s (open in "
                    "chrome://tracing or Perfetto)\n",
                    trace_dir);
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
