/**
 * @file
 * Ablation (keytakeaway #5) — per-step token budget (chunked
 * prefill): small budgets keep decode latency steady but stretch
 * prompt processing; large budgets let long prefills monopolize steps
 * and delay concurrent decodes — the scheduling interference the
 * paper describes for token-level schedulers like vLLM.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_chunked_prefill");

    for (bool chatbot : {true, false}) {
        core::Table t(std::string("Ablation: per-step token budget — ") +
                      (chatbot ? "ShareGPT at 4 QPS"
                               : "ReAct/HotpotQA at 1.2 QPS"));
        t.header({"Budget (tokens/step)", "p50", "p95", "Mean",
                  "Throughput"});
        for (std::int64_t budget : {128, 256, 512, 1024, 2048}) {
            ServeConfig cfg;
            cfg.chatbot = chatbot;
            cfg.agent = AgentKind::ReAct;
            cfg.bench = Benchmark::HotpotQA;
            cfg.engineConfig = core::enginePreset8b();
            cfg.engineConfig.maxBatchTokens = budget;
            cfg.qps = chatbot ? 4.0 : 1.2;
            cfg.numRequests = chatbot ? 200 : 120;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            t.row({core::fmtCount(static_cast<double>(budget)),
                   core::fmtSeconds(r.p50()),
                   core::fmtSeconds(r.p95()),
                   core::fmtSeconds(r.e2eSeconds.mean()),
                   core::fmtDouble(r.throughputQps(), 2)});
        }
        t.print();
        std::printf("\n");
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
