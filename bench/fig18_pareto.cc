/**
 * @file
 * Fig 18 — accuracy and cost-efficiency across the AI-agent design
 * space: (a) accuracy vs end-to-end latency, (b) accuracy per unit
 * latency, (c) accuracy per TFLOP, with the Pareto frontier marked.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "stats/pareto.hh"

namespace
{

using namespace benchutil;

struct Variant
{
    AgentKind agent;
    std::string label;
    AgentConfig config;
};

std::vector<Variant>
designSpace()
{
    std::vector<Variant> v;
    for (int fs : {0, 2, 6})
        v.push_back({AgentKind::CoT, "CoT fs=" + std::to_string(fs),
                     [&] {
                         AgentConfig c;
                         c.fewShotExamples = fs;
                         return c;
                     }()});
    for (int iters : {3, 5, 7, 10}) {
        AgentConfig c;
        c.maxIterations = iters;
        v.push_back({AgentKind::ReAct,
                     "ReAct it=" + std::to_string(iters), c});
    }
    for (int refl : {1, 2, 4}) {
        AgentConfig c;
        c.maxReflections = refl;
        v.push_back({AgentKind::Reflexion,
                     "Reflexion r=" + std::to_string(refl), c});
    }
    for (int kids : {2, 5}) {
        for (int rounds : {3, 7}) {
            AgentConfig c;
            c.latsChildren = kids;
            c.maxIterations = rounds;
            v.push_back({AgentKind::Lats,
                         "LATS c=" + std::to_string(kids) +
                             ",d=" + std::to_string(rounds),
                         c});
        }
    }
    for (int rounds : {1, 2, 3}) {
        AgentConfig c;
        c.compilerMaxRounds = rounds;
        v.push_back({AgentKind::LlmCompiler,
                     "LLMCompiler r=" + std::to_string(rounds), c});
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig18_pareto");

    for (Benchmark bench : workload::agenticBenchmarks) {
        core::Table t("Fig 18: Accuracy vs cost design space — " +
                      std::string(workload::benchmarkName(bench)));
        t.header({"Design point", "Accuracy", "Latency",
                  "Acc/latency (1/s)", "Acc/PFLOP", "Pareto"});

        std::vector<stats::DesignPoint> points;
        struct RowData
        {
            std::string label;
            double acc, lat, flops;
        };
        std::vector<RowData> rows;
        for (const auto &variant : designSpace()) {
            if (!agents::agentSupports(variant.agent, bench))
                continue;
            auto cfg = defaultProbe(variant.agent, bench, true, false,
                                    30);
            cfg.agentConfig = variant.config;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            const double lat = r.e2eSeconds().mean();
            rows.push_back(
                {variant.label, r.accuracy(), lat, r.meanFlops()});
            points.push_back(
                {lat, r.accuracy(), rows.size() - 1});
        }
        const auto frontier = stats::paretoFrontier(points);
        std::vector<bool> on_frontier(rows.size(), false);
        for (const auto &p : frontier)
            on_frontier[p.tag] = true;

        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &r = rows[i];
            t.row({r.label, core::fmtPercent(r.acc),
                   core::fmtSeconds(r.lat),
                   core::fmtDouble(r.acc / r.lat, 4),
                   core::fmtDouble(r.acc / (r.flops / 1e15), 2),
                   on_frontier[i] ? "*" : ""});
        }
        t.print();
        std::printf("\n");
    }

    std::printf("Paper reference: accuracy rises with compute but with "
                "diminishing returns; ReAct is cost-efficient, LATS "
                "accurate but expensive, LLMCompiler beats ReAct on "
                "HotpotQA yet loses efficiency on WebShop.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
