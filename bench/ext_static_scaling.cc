/**
 * @file
 * Extension — static vs dynamic test-time scaling: Self-Consistency
 * (N parallel CoT samples + majority vote; the paper's Fig 1(b)
 * taxonomy) compared with the agentic workflows on the same tasks.
 * Static parallel sampling buys accuracy cheaply at first and then
 * flattens well below what tool-augmented tree search reaches — the
 * reason the paper's subject is *dynamic* reasoning.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ext_static_scaling");

    for (Benchmark bench : {Benchmark::HotpotQA, Benchmark::Math}) {
        core::Table t("Extension: static multi-sample scaling vs "
                      "agents — " +
                      std::string(workload::benchmarkName(bench)));
        t.header({"Method", "Accuracy", "Latency", "Energy (Wh)",
                  "LLM calls"});

        {
            const auto r =
                core::runProbe(defaultProbe(AgentKind::CoT, bench));
            t.row({"CoT (1 sample)", core::fmtPercent(r.accuracy()),
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanEnergyWh(), 2),
                   core::fmtDouble(r.meanLlmCalls(), 1)});
        }
        for (int n : {3, 5, 10, 20}) {
            auto cfg =
                defaultProbe(AgentKind::SelfConsistency, bench);
            cfg.agentConfig.scSamples = n;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            t.row({"Self-Consistency n=" + std::to_string(n),
                   core::fmtPercent(r.accuracy()),
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanEnergyWh(), 2),
                   core::fmtDouble(r.meanLlmCalls(), 1)});
        }
        for (int n : {5, 10}) {
            auto cfg = defaultProbe(AgentKind::BestOfN, bench);
            cfg.agentConfig.scSamples = n;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            t.row({"Best-of-N n=" + std::to_string(n),
                   core::fmtPercent(r.accuracy()),
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanEnergyWh(), 2),
                   core::fmtDouble(r.meanLlmCalls(), 1)});
        }
        for (int breadth : {3, 5}) {
            auto cfg = defaultProbe(AgentKind::TreeOfThoughts, bench);
            cfg.agentConfig.latsChildren = breadth;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            t.row({"Tree-of-Thoughts b=" + std::to_string(breadth),
                   core::fmtPercent(r.accuracy()),
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanEnergyWh(), 2),
                   core::fmtDouble(r.meanLlmCalls(), 1)});
        }
        for (AgentKind agent : {AgentKind::ReAct, AgentKind::Lats}) {
            auto r_cfg = defaultProbe(agent, bench);
            telemetry.apply(r_cfg);
            const auto r = core::runProbe(r_cfg);
            t.row({std::string(agents::agentName(agent)),
                   core::fmtPercent(r.accuracy()),
                   core::fmtSeconds(r.e2eSeconds().mean()),
                   core::fmtDouble(r.meanEnergyWh(), 2),
                   core::fmtDouble(r.meanLlmCalls(), 1)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Takeaway: static parallel sampling saturates well "
                "below tool-augmented dynamic reasoning on "
                "knowledge-gated tasks — internal diversity cannot "
                "substitute for external evidence.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
