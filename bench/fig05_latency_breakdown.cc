/**
 * @file
 * Fig 5 — latency breakdown of agents (LLM / tool / overlap / other)
 * and end-to-end latency per request.
 */

#include <cstdio>

#include "common.hh"

int
main()
{
    using namespace benchutil;

    core::Table t("Fig 5: Latency breakdown and end-to-end latency");
    t.header({"Benchmark", "Agent", "LLM %", "Tool %", "Overlap %",
              "Other %", "E2E latency"});

    double llm_share_total = 0.0;
    double tool_share_total = 0.0;
    int pairs = 0;

    for (const auto &[agent, bench] : supportedPairs()) {
        const auto r = core::runProbe(defaultProbe(agent, bench));
        double llm = 0.0;
        double tool = 0.0;
        double overlap = 0.0;
        double other = 0.0;
        double e2e = 0.0;
        for (const auto &req : r.requests) {
            llm += req.result.latency.llmOnlySeconds;
            tool += req.result.latency.toolOnlySeconds;
            overlap += req.result.latency.overlapSeconds;
            other += req.result.latency.otherSeconds;
            e2e += req.result.e2eSeconds;
        }
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtPercent(llm / e2e),
               core::fmtPercent(tool / e2e),
               core::fmtPercent(overlap / e2e),
               core::fmtPercent(other / e2e),
               core::fmtSeconds(e2e / r.requests.size())});
        if (agent != AgentKind::CoT) {
            llm_share_total += (llm + overlap) / e2e;
            tool_share_total += (tool + overlap) / e2e;
            ++pairs;
        }
    }
    t.print();

    std::printf("\nAcross tool-augmented pairs: LLM inference %.1f%%, "
                "tool execution %.1f%% of latency "
                "(paper: 69.4%% / 30.2%%).\n",
                100.0 * llm_share_total / pairs,
                100.0 * tool_share_total / pairs);
    return 0;
}
