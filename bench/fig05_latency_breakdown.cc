/**
 * @file
 * Fig 5 — latency breakdown of agents (LLM / tool / overlap / other)
 * and end-to-end latency per request.
 *
 * Doubles as the span-pipeline cross-check: every probe also collects
 * causal span trees, and the critical-path blame vectors must agree
 * with the ad-hoc interval accounting within 2% of end-to-end time —
 * (a) blame conservation (the vector sums to the request latency) and
 * (b) active-time agreement (non-idle blame equals the LLM + tool +
 * overlap time). A miss exits non-zero.
 */

#include <cmath>
#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig05_latency_breakdown");

    core::Table t("Fig 5: Latency breakdown and end-to-end latency");
    t.header({"Benchmark", "Agent", "LLM %", "Tool %", "Overlap %",
              "Other %", "E2E latency"});

    double llm_share_total = 0.0;
    double tool_share_total = 0.0;
    int pairs = 0;
    bool cross_ok = true;
    double worst_conserve = 0.0;
    double worst_active = 0.0;

    for (const auto &[agent, bench] : supportedPairs()) {
        auto cfg = defaultProbe(agent, bench);
        telemetry.apply(cfg);
        // Collect span trees regardless of the CLI flags: the blame
        // cross-check below is part of the figure's contract.
        telemetry::SpanCollector spans;
        cfg.spans = &spans;
        const auto r = core::runProbe(cfg);
        double llm = 0.0;
        double tool = 0.0;
        double overlap = 0.0;
        double other = 0.0;
        double e2e = 0.0;
        double blame_total = 0.0;
        double blame_idle = 0.0;
        for (const auto &req : r.requests) {
            llm += req.result.latency.llmOnlySeconds;
            tool += req.result.latency.toolOnlySeconds;
            overlap += req.result.latency.overlapSeconds;
            other += req.result.latency.otherSeconds;
            e2e += req.result.e2eSeconds;
            blame_total += req.blame.total();
            blame_idle += req.blame[telemetry::BlameCategory::Idle];
        }
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtPercent(llm / e2e),
               core::fmtPercent(tool / e2e),
               core::fmtPercent(overlap / e2e),
               core::fmtPercent(other / e2e),
               core::fmtSeconds(e2e / r.requests.size())});
        if (agent != AgentKind::CoT) {
            llm_share_total += (llm + overlap) / e2e;
            tool_share_total += (tool + overlap) / e2e;
            ++pairs;
        }

        // Cross-check: the two accountings measure the same wall
        // clock, so compare identities rather than per-category
        // splits (the critical path attributes overlapped work to a
        // single span; the ad-hoc accounting tracks activity).
        const double active = llm + tool + overlap;
        const double conserve_err =
            std::abs(blame_total - e2e) / e2e;
        const double active_err =
            std::abs((blame_total - blame_idle) - active) / e2e;
        worst_conserve = std::max(worst_conserve, conserve_err);
        worst_active = std::max(worst_active, active_err);
        if (conserve_err > 0.02 || active_err > 0.02) {
            std::fprintf(stderr,
                         "error: span blame disagrees with ad-hoc "
                         "accounting for %s/%s: conservation %.2f%%, "
                         "active time %.2f%% (tolerance 2%%)\n",
                         workload::benchmarkName(bench).data(),
                         agents::agentName(agent).data(),
                         100.0 * conserve_err, 100.0 * active_err);
            cross_ok = false;
        }
    }
    t.print();

    std::printf("\nAcross tool-augmented pairs: LLM inference %.1f%%, "
                "tool execution %.1f%% of latency "
                "(paper: 69.4%% / 30.2%%).\n",
                100.0 * llm_share_total / pairs,
                100.0 * tool_share_total / pairs);
    std::printf("Span cross-check: worst conservation error %.3f%%, "
                "worst active-time error %.3f%% of e2e "
                "(tolerance 2%%) — %s\n",
                100.0 * worst_conserve, 100.0 * worst_active,
                cross_ok ? "OK" : "FAIL");
    if (!cross_ok)
        return 1;
    if (!telemetry.write())
        return 1;
    return 0;
}
