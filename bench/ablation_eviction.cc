/**
 * @file
 * Ablation (keytakeaway #9) — KV-cache eviction policy under a
 * constrained pool: LRU (vLLM default) vs FIFO. Agent workloads have
 * strong recency (a request's next call reuses its last call's
 * prefix), so recency-aware eviction holds its hit rate where FIFO
 * throws the hot prefixes away.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_eviction");

    const auto weight_bytes = llm::llama31_8b().weightBytes();

    core::Table t("Ablation: KV eviction policy (ReAct serving, "
                  "constrained pool)");
    t.header({"Benchmark", "Pool", "Policy", "Hit rate", "p95",
              "Throughput"});

    struct Point
    {
        Benchmark bench;
        double qps;
    };
    for (const Point point : {Point{Benchmark::HotpotQA, 1.0},
                              Point{Benchmark::WebShop, 0.6}}) {
        for (double frac : {0.15, 0.30}) {
            for (auto policy : {kv::EvictionPolicy::Lru,
                                kv::EvictionPolicy::Fifo}) {
                ServeConfig cfg;
                cfg.agent = AgentKind::ReAct;
                cfg.bench = point.bench;
                cfg.engineConfig = core::enginePreset8b();
                cfg.engineConfig.evictionPolicy = policy;
                cfg.engineConfig.kvPoolBytes =
                    static_cast<std::int64_t>(
                        frac * static_cast<double>(weight_bytes));
                cfg.qps = point.qps;
                cfg.numRequests = 100;
                cfg.seed = kSeed;
                telemetry.apply(cfg);
                const auto r = core::runServing(cfg);
                t.row({std::string(workload::benchmarkName(
                           point.bench)),
                       core::fmtPercent(frac, 0),
                       policy == kv::EvictionPolicy::Lru ? "LRU"
                                                         : "FIFO",
                       core::fmtPercent(r.cacheHitRate),
                       core::fmtSeconds(r.p95()),
                       core::fmtDouble(r.throughputQps(), 2)});
            }
        }
    }
    t.print();
    if (!telemetry.write())
        return 1;
    return 0;
}
