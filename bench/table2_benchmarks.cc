/**
 * @file
 * Table II — description of benchmarks: task, tools, and the agents
 * evaluated on each.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("table2_benchmarks");

    core::Table t("Table II: Description of benchmarks");
    t.header({"Benchmark", "Task", "Tool", "Agents"});
    for (Benchmark b : workload::agenticBenchmarks) {
        const auto &prof = workload::profile(b);
        std::string agents_list;
        for (AgentKind a : agents::allAgents) {
            if (!agents::agentSupports(a, b))
                continue;
            if (!agents_list.empty())
                agents_list += ", ";
            agents_list += std::string(agents::agentName(a));
        }
        t.row({prof.name, prof.taskDescription, prof.toolDescription,
               agents_list});
    }
    t.print();
    if (!telemetry.write())
        return 1;
    return 0;
}
