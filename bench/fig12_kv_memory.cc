/**
 * @file
 * Fig 12 — average GPU memory required for the KV cache per agent
 * request, with and without prefix caching. LATS's parallel siblings
 * share their prompt prefix, so caching slashes its footprint; CoT is
 * the single-inference baseline.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig12_kv_memory");

    core::Table t("Fig 12: KV-cache memory per request, with vs "
                  "without prefix caching");
    t.header({"Benchmark", "Agent", "Avg KV (no cache)",
              "Avg KV (cache)", "Peak KV (cache)", "Reduction"});

    double cot_avg_mb = 0.0;
    int cot_count = 0;
    double agent_avg_mb = 0.0;
    int agent_count = 0;
    double lats_reduction = 0.0;
    int lats_count = 0;

    for (const auto &[agent, bench] : supportedPairs()) {
        auto off_cfg = defaultProbe(agent, bench, false);
        telemetry.apply(off_cfg);
        const auto off = core::runProbe(off_cfg);
        auto on_cfg = defaultProbe(agent, bench, true);
        telemetry.apply(on_cfg);
        const auto on = core::runProbe(on_cfg);
        auto avg_kv = [](const core::ProbeResult &r) {
            double total = 0.0;
            for (const auto &req : r.requests)
                total += req.kvAvgBytes;
            return total / static_cast<double>(r.requests.size());
        };
        auto peak_kv = [](const core::ProbeResult &r) {
            double total = 0.0;
            for (const auto &req : r.requests)
                total += req.kvMaxBytes;
            return total / static_cast<double>(r.requests.size());
        };
        const double a_off = avg_kv(off);
        const double a_on = avg_kv(on);
        const double reduction = 1.0 - a_on / a_off;
        t.row({std::string(workload::benchmarkName(bench)),
               std::string(agents::agentName(agent)),
               core::fmtEng(a_off, "B"), core::fmtEng(a_on, "B"),
               core::fmtEng(peak_kv(on), "B"),
               core::fmtPercent(reduction)});
        if (agent == AgentKind::CoT) {
            cot_avg_mb += a_on;
            ++cot_count;
        } else {
            agent_avg_mb += a_on;
            ++agent_count;
        }
        if (agent == AgentKind::Lats) {
            lats_reduction += reduction;
            ++lats_count;
        }
    }
    t.print();

    std::printf("\nTool-augmented agents use %.1fx the per-request KV "
                "memory of CoT (paper: 3.0x avg, up to 5.4x). Prefix "
                "caching cuts LATS's footprint by %.1f%% "
                "(paper: 64.8%%).\n",
                (agent_avg_mb / agent_count) / (cot_avg_mb / cot_count),
                100.0 * lats_reduction / lats_count);
    if (!telemetry.write())
        return 1;
    return 0;
}
