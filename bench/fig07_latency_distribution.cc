/**
 * @file
 * Fig 7 — end-to-end latency distribution: single-turn chatbot
 * (ShareGPT) vs a ReAct agent (HotpotQA), one request at a time with
 * prefix caching enabled.
 *
 * The distributions are accumulated into log-linear (HDR-style)
 * histograms: bucket width tracks magnitude at a bounded relative
 * error, so the same histogram resolves the chatbot's 3-7 s mode and
 * the agent's minute-scale tail without choosing a bin width for
 * either.
 */

#include <cstdio>

#include "common.hh"
#include "stats/hdr_histogram.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig07_latency_distribution");

    const int n = 150;
    const auto chat = shareGptClosedLoop(n);
    auto react_cfg = defaultProbe(AgentKind::ReAct,
                                  Benchmark::HotpotQA, true, false, n);
    telemetry.apply(react_cfg);
    const auto react = core::runProbe(react_cfg);

    std::printf("== Fig 7: Latency distribution, ShareGPT vs ReAct "
                "(HotpotQA) ==\n\n");

    stats::HdrHistogram chat_hist(0.25, 120.0, 0.05);
    for (double v : chat.e2eSeconds.values())
        chat_hist.add(v);
    std::printf("ShareGPT (single LLM inference per request), "
                "seconds:\n%s\n",
                chat_hist.render(40).c_str());
    std::printf("  mean %.2f s, p50 %.2f s, p95 %.2f s, "
                "max %.2f s\n\n",
                chat.e2eSeconds.mean(), chat.p50(), chat.p95(),
                chat.e2eSeconds.max());

    stats::HdrHistogram react_hist(0.25, 120.0, 0.05);
    const auto react_e2e = react.e2eSeconds();
    for (double v : react_e2e.values())
        react_hist.add(v);
    std::printf("ReAct agent (multi-step reasoning + tools), "
                "seconds:\n%s\n",
                react_hist.render(40).c_str());
    std::printf("  mean %.2f s, p50 %.2f s, p95 %.2f s, "
                "max %.2f s\n\n",
                react_e2e.mean(), react_e2e.percentile(50),
                react_e2e.percentile(95), react_e2e.max());

    const double chat_width =
        chat.p95() - chat.e2eSeconds.percentile(5);
    const double react_width =
        react_e2e.percentile(95) - react_e2e.percentile(5);
    std::printf("Distribution width (p95-p5): ShareGPT %.1f s "
                "(stddev %.1f s), ReAct %.1f s (stddev %.1f s) — the "
                "agent's distribution is far wider (paper: most "
                "chatbot responses complete in 3-7 s; the agent shows "
                "a broad, heavy-tailed spread).\n",
                chat_width, chat.e2eSeconds.stddev(), react_width,
                react_e2e.stddev());
    if (telemetry.reportRequested()) {
        // HDR-derived quantiles hold the distribution shape under the
        // perf-report diff gate (bounded relative error ±5%).
        auto &rep = telemetry.report();
        rep.set("chat_hdr_p50_seconds", chat_hist.quantile(0.50));
        rep.set("chat_hdr_p95_seconds", chat_hist.quantile(0.95));
        rep.set("react_hdr_p50_seconds", react_hist.quantile(0.50));
        rep.set("react_hdr_p95_seconds", react_hist.quantile(0.95));
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
