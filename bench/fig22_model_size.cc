/**
 * @file
 * Fig 22 — accuracy-cost trade-offs under test-time scaling across
 * model sizes (Llama-3.1 8B vs 70B) on HotpotQA: latency, total token
 * usage, and GPU energy per request for Reflexion (sequential
 * scaling) and LATS (parallel scaling).
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace benchutil;

void
sweepModel(AgentKind agent, bool use70b, TelemetryCli &telemetry)
{
    const char *model = use70b ? "70B" : "8B";
    core::Table t(std::string("Fig 22: ") +
                  std::string(agents::agentName(agent)) + " on " +
                  model + " — test-time scaling levels (HotpotQA)");
    t.header({"Scaling level", "Accuracy", "Latency", "Total tokens",
              "Energy (Wh)"});

    const std::vector<int> levels =
        agent == AgentKind::Reflexion
            ? std::vector<int>{0, 1, 2, 4, 8, 16}
            : std::vector<int>{1, 2, 4, 8, 16};
    for (int level : levels) {
        auto cfg = defaultProbe(agent, Benchmark::HotpotQA, true,
                                use70b, 30);
        if (agent == AgentKind::Reflexion)
            cfg.agentConfig.maxReflections = level;
        else
            cfg.agentConfig.latsChildren = level;
        telemetry.apply(cfg);
        const auto r = core::runProbe(cfg);
        double tokens = 0.0;
        for (const auto &req : r.requests) {
            tokens += static_cast<double>(
                req.result.tokens.inputTotal() +
                req.result.tokens.output);
        }
        tokens /= static_cast<double>(r.requests.size());
        const std::string label =
            (agent == AgentKind::Reflexion ? "reflections="
                                           : "children=") +
            std::to_string(level);
        t.row({label, core::fmtPercent(r.accuracy()),
               core::fmtSeconds(r.e2eSeconds().mean()),
               core::fmtEng(tokens, "tok"),
               core::fmtDouble(r.meanEnergyWh(), 2)});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig22_model_size");

    for (AgentKind agent : {AgentKind::Reflexion, AgentKind::Lats}) {
        sweepModel(agent, false, telemetry);
        sweepModel(agent, true, telemetry);
    }
    std::printf(
        "Paper reference: 70B reaches high accuracy with fewer steps "
        "but ~8x the GPUs; the 8B model needs more tokens/steps yet "
        "costs less energy per request, and with LATS-style parallel "
        "scaling approaches 70B accuracy — test-time strategy "
        "compensates for model size.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
