/**
 * @file
 * Extension — time-to-first-token (TTFT) under load: the
 * responsiveness metric of interactive serving. TTFT is
 * queueing + prefill, exactly the path prefix caching shortens
 * (keytakeaway #5: "scheduling-critical prefill phases"), so caching
 * compresses TTFT tails even where end-to-end latency barely moves.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ext_ttft");

    core::Table t("Extension: TTFT under load — multi-turn chat "
                  "sessions (prefill-heavy follow-ups)");
    t.header({"Caching", "Sessions QPS", "TTFT p50", "TTFT p95",
              "Turn p95"});
    for (double qps : {0.5, 1.0, 1.5}) {
        for (bool caching : {true, false}) {
            ServeConfig cfg;
            cfg.chatbot = true;
            cfg.multiTurn = true;
            cfg.engineConfig = core::enginePreset8b();
            cfg.engineConfig.enablePrefixCaching = caching;
            cfg.qps = qps;
            cfg.numRequests = 60;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            t.row({caching ? "on" : "off", core::fmtDouble(qps, 1),
                   core::fmtSeconds(r.ttftSeconds.percentile(50)),
                   core::fmtSeconds(r.ttftSeconds.percentile(95)),
                   core::fmtSeconds(r.turnSeconds.percentile(95))});
        }
    }
    t.print();

    core::Table t2("Extension: TTFT under load — single-turn "
                   "ShareGPT");
    t2.header({"Caching", "QPS", "TTFT p50", "TTFT p95", "E2E p95"});
    for (double qps : {2.0, 4.0}) {
        for (bool caching : {true, false}) {
            ServeConfig cfg;
            cfg.chatbot = true;
            cfg.engineConfig = core::enginePreset8b();
            cfg.engineConfig.enablePrefixCaching = caching;
            cfg.qps = qps;
            cfg.numRequests = 200;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            t2.row({caching ? "on" : "off", core::fmtDouble(qps, 1),
                    core::fmtSeconds(r.ttftSeconds.percentile(50)),
                    core::fmtSeconds(r.ttftSeconds.percentile(95)),
                    core::fmtSeconds(r.p95())});
        }
    }
    t2.print();

    std::printf("\nTakeaway: prefix caching compresses TTFT where "
                "prompts share prefixes (conversation follow-ups) "
                "and is neutral where they do not (single-turn "
                "chat) — the per-metric view behind keytakeaway "
                "#5.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
