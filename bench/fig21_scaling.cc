/**
 * @file
 * Fig 21 — accuracy-latency trade-offs under sequential vs parallel
 * test-time scaling on HotpotQA:
 *  (a) Reflexion, scaling the maximum reflection steps (sequential);
 *  (b) LATS, scaling search rounds at fixed width (sequential);
 *  (c) LATS, scaling children per expansion (parallel).
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace benchutil;

struct Point
{
    std::string level;
    double acc = 0.0;
    double lat = 0.0;
};

void
printSeries(const std::string &title, const std::string &level_name,
            const std::vector<Point> &points)
{
    core::Table t(title);
    t.header({level_name, "Accuracy", "Avg latency",
              "Marginal s per +1% acc"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::string marginal = "-";
        if (i > 0) {
            const double dacc =
                (points[i].acc - points[i - 1].acc) * 100.0;
            const double dlat = points[i].lat - points[i - 1].lat;
            if (dacc > 0.01)
                marginal = core::fmtDouble(dlat / dacc, 1);
        }
        t.row({points[i].level, core::fmtPercent(points[i].acc),
               core::fmtSeconds(points[i].lat), marginal});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig21_scaling");
    const Benchmark bench = Benchmark::HotpotQA;

    // (a) Reflexion: sequential scaling via reflection budget.
    {
        std::vector<Point> pts;
        for (int refl : {0, 1, 2, 4, 8}) {
            auto cfg = defaultProbe(AgentKind::Reflexion, bench);
            cfg.agentConfig.maxReflections = refl;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            pts.push_back({"refl=" + std::to_string(refl),
                           r.accuracy(), r.e2eSeconds().mean()});
        }
        printSeries("Fig 21(a): Reflexion sequential scaling "
                    "(max reflection steps)",
                    "Reflections", pts);
    }

    // (b) LATS: sequential scaling via search rounds.
    {
        std::vector<Point> pts;
        for (int rounds : {2, 3, 5, 7, 10}) {
            auto cfg = defaultProbe(AgentKind::Lats, bench);
            cfg.agentConfig.maxIterations = rounds;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            pts.push_back({"rounds=" + std::to_string(rounds),
                           r.accuracy(), r.e2eSeconds().mean()});
        }
        printSeries("Fig 21(b): LATS sequential scaling "
                    "(search rounds, width 5)",
                    "Rounds", pts);
    }

    // (c) LATS: parallel scaling via children per expansion.
    {
        std::vector<Point> pts;
        for (int kids : {1, 2, 4, 8, 16}) {
            auto cfg = defaultProbe(AgentKind::Lats, bench);
            cfg.agentConfig.latsChildren = kids;
            telemetry.apply(cfg);
            const auto r = core::runProbe(cfg);
            pts.push_back({"children=" + std::to_string(kids),
                           r.accuracy(), r.e2eSeconds().mean()});
        }
        printSeries("Fig 21(c): LATS parallel scaling "
                    "(children per expansion)",
                    "Children", pts);
        std::printf("Paper reference: sequential scaling buys accuracy "
                    "at steeply diminishing returns (31x the latency "
                    "for the same marginal gain late in the curve); "
                    "parallel scaling raises accuracy while REDUCING "
                    "latency (+14.4pp, -196 s from 1 to 16 children) "
                    "at the cost of concurrent LLM load.\n");
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
