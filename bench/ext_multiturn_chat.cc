/**
 * @file
 * Extension (keytakeaway #8) — cross-query prefix persistence:
 * multi-turn conversation sessions where every follow-up turn extends
 * the same context. Persisting the session's KV blocks between turns
 * (prefix caching across queries) removes almost all prefill work for
 * follow-ups; without it every turn recomputes the whole, growing
 * conversation.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ext_multiturn_chat");

    core::Table t("Extension: multi-turn chat sessions, prefix "
                  "persistence across turns");
    t.header({"Caching", "Sessions QPS", "Turn p50", "Turn p95",
              "Hit rate", "Prefill tokens"});

    for (double qps : {0.5, 1.0}) {
        for (bool caching : {true, false}) {
            ServeConfig cfg;
            cfg.chatbot = true;
            cfg.multiTurn = true;
            cfg.engineConfig = core::enginePreset8b();
            cfg.engineConfig.enablePrefixCaching = caching;
            cfg.qps = qps;
            cfg.numRequests = 80; // sessions
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            t.row({caching ? "on" : "off", core::fmtDouble(qps, 1),
                   core::fmtSeconds(r.turnSeconds.percentile(50)),
                   core::fmtSeconds(r.turnSeconds.percentile(95)),
                   core::fmtPercent(r.cacheHitRate),
                   core::fmtEng(static_cast<double>(
                                    r.engineStats.prefillTokens),
                                "tok")});
        }
    }
    t.print();

    std::printf("\nDesign note: realizes keytakeaway #8's proposal of "
                "\"solutions that persist and reuse prefixes across "
                "queries\": a session's turns are separate engine "
                "queries whose shared conversation prefix stays "
                "cached between them.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
