/**
 * @file
 * Elastic serving sweep — what closed-loop autoscaling buys against
 * static provisioning on a diurnal + bursty arrival pattern.
 *
 * The same mixed agent + chatbot workload arrives along a raised-
 * cosine day/night curve with a fixed-phase burst window each period
 * (a compressed diurnal cycle), and is served three ways:
 *
 *   static-small  the capacity floor, always on: cheapest possible
 *                 fleet, but the peak lands on a saturated queue.
 *   static-large  the capacity ceiling, always on: peak-proof, but
 *                 the trough pays for idle GPUs all night.
 *   autoscaled    starts at the floor; the controller watches the
 *                 EWMA arrival rate, a P² queue-delay percentile and
 *                 the SLO burn rate, pays a simulated warm-up (boot +
 *                 model-weight load over PCIe) per scale-out, drains
 *                 and live-migrates on scale-in, and reject-fasts
 *                 requests whose projected queue delay would eat
 *                 their deadline budget.
 *
 * Reported per scenario: goodput, TTFT/E2E attainment, tail latency,
 * provisioned vs busy GPU-seconds (the cost of elasticity in real
 * units), GPU-seconds per completed request, scaling activity, and
 * lost prefill (must be 0 for the autoscaler: scale-in uses the
 * migration path, never the crash path). The headline: autoscaling
 * holds SLO attainment near static-large at materially lower
 * provisioned GPU-seconds.
 *
 *   autoscale_sweep [--trace out.json] [--metrics out.prom]
 *                   [--report out.json]
 */

#include <cstdio>

#include "common.hh"
#include "core/cluster.hh"
#include "telemetry/slo.hh"

namespace
{

using namespace benchutil;

constexpr int kFloorNodes = 1;
constexpr int kCeilingNodes = 4;

core::ClusterConfig
baseConfig()
{
    core::ClusterConfig cfg;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;

    core::WorkloadSpec react_hotpot;
    react_hotpot.agent = AgentKind::ReAct;
    react_hotpot.bench = Benchmark::HotpotQA;
    cfg.mix.push_back(react_hotpot);

    core::WorkloadSpec chat;
    chat.chatbot = true;
    chat.weight = 2.0;
    cfg.mix.push_back(chat);

    cfg.numRequests = 620;
    cfg.seed = kSeed;
    cfg.chatDeadlineSeconds = 60.0;

    // A compressed diurnal cycle: 2 min per "day", a 20x trough-to-
    // crest swing, and a 20 s flash-crowd burst in the evening that
    // a single node cannot absorb.
    cfg.arrival.kind = core::ArrivalPattern::Kind::Diurnal;
    cfg.arrival.periodSeconds = 120.0;
    cfg.arrival.baseQps = 0.3;
    cfg.arrival.peakQps = 6.0;
    cfg.arrival.burstStartFraction = 0.55;
    cfg.arrival.burstDurationSeconds = 20.0;
    cfg.arrival.burstMultiplier = 3.0;
    return cfg;
}

core::AutoscalerConfig
autoscalerConfig()
{
    core::AutoscalerConfig a;
    a.enabled = true;
    a.minNodes = kFloorNodes;
    a.maxNodes = kCeilingNodes;
    // One 8B node sustains ~2.2 qps of this mix (static-small serves
    // 360 requests in ~117 s at 99% utilization); the capacity term
    // orders nodes as soon as the EWMA arrival rate clears 75% of
    // provisioned throughput, before queueing damage shows up.
    a.nodeServiceQps = 2.2;
    a.queueDelayQuantile = 0.9;
    a.queueDelayHighSeconds = 4.0;
    a.queueDelayLowSeconds = 0.5;
    a.minDelaySamples = 6;
    a.scaleOutCooldownSeconds = 8.0;
    a.scaleInCooldownSeconds = 18.0;
    a.drainDeadlineSeconds = 5.0;
    a.admissionDeadlineFraction = 0.5;
    return a;
}

telemetry::SloConfig
sloConfig()
{
    telemetry::SloConfig slo;
    slo.ttftTargetSeconds = 5.0;
    slo.tbtTargetSeconds = 0.3;
    slo.e2eTargetSeconds = 30.0;
    slo.windowSeconds = 15.0;
    return slo;
}

double
busyGpuSeconds(const core::ClusterResult &r)
{
    double busy = 0.0;
    for (const auto &node : r.nodes)
        busy += node.engineStats.busySeconds;
    return busy;
}

} // namespace

int
main(int argc, char **argv)
{
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("autoscale_sweep");

    struct Scenario
    {
        const char *name;
        const char *key;
        int numNodes;
        bool autoscale;
    };
    const Scenario scenarios[] = {
        {"static-small", "static_small", kFloorNodes, false},
        {"static-large", "static_large", kCeilingNodes, false},
        {"autoscaled", "autoscaled", kFloorNodes, true},
    };

    core::Table table(
        "Elastic serving: diurnal + bursty arrivals, floor 1 / "
        "ceiling 4 nodes");
    table.header({"Scenario", "Nodes", "Goodput", "TTFT attain",
                  "E2E attain", "p99", "Prov GPU-s", "Busy GPU-s",
                  "Util", "GPU-s/req", "Out/In", "Rejects",
                  "Lost prefill"});

    for (const Scenario &scenario : scenarios) {
        auto cfg = baseConfig();
        cfg.numNodes = scenario.numNodes;
        if (scenario.autoscale)
            cfg.autoscaler = autoscalerConfig();
        telemetry::SloTracker slo(sloConfig());
        cfg.slo = &slo;
        // Telemetry files capture the autoscaled run: the resilience
        // track of the Chrome trace holds every scaling decision
        // (scale_out:<reason>, node_boot, node_ready, scale_in) and
        // admission_reject instants.
        if (scenario.autoscale)
            telemetry.apply(cfg);
        const auto r = core::runCluster(cfg);

        const double busy = busyGpuSeconds(r);
        const double util =
            r.provisionedGpuSeconds > 0
                ? busy / r.provisionedGpuSeconds
                : 0.0;
        const double per_request =
            r.completed > 0 ? r.provisionedGpuSeconds / r.completed
                            : 0.0;
        const std::string node_label =
            scenario.autoscale
                ? sim::strfmt("%d..%d (peak %d)", kFloorNodes,
                              kCeilingNodes, r.peakActiveNodes)
                : sim::strfmt("%d", scenario.numNodes);
        table.row(
            {scenario.name, node_label,
             core::fmtPercent(r.goodputFraction()),
             core::fmtPercent(
                 slo.attainment(telemetry::SloMetric::Ttft)),
             core::fmtPercent(
                 slo.attainment(telemetry::SloMetric::E2e)),
             core::fmtSeconds(r.p99()),
             core::fmtSeconds(r.provisionedGpuSeconds),
             core::fmtSeconds(busy), core::fmtPercent(util),
             core::fmtSeconds(per_request),
             sim::strfmt("%lld/%lld",
                         static_cast<long long>(r.scaleOuts),
                         static_cast<long long>(r.scaleIns)),
             core::fmtCount(static_cast<double>(r.admissionRejects)),
             core::fmtSeconds(r.lostPrefillSeconds)});

        if (telemetry.reportRequested()) {
            const std::string prefix = scenario.key;
            auto &rep = telemetry.report();
            rep.set(prefix + "_goodput", r.goodputFraction());
            rep.set(prefix + "_ttft_attainment",
                    slo.attainment(telemetry::SloMetric::Ttft));
            rep.set(prefix + "_e2e_attainment",
                    slo.attainment(telemetry::SloMetric::E2e));
            rep.set(prefix + "_p99_seconds", r.p99());
            rep.set(prefix + "_provisioned_gpu_seconds",
                    r.provisionedGpuSeconds);
            rep.set(prefix + "_busy_gpu_seconds", busy);
            rep.set(prefix + "_gpu_seconds_per_request", per_request);
            rep.set(prefix + "_scale_outs",
                    static_cast<double>(r.scaleOuts));
            rep.set(prefix + "_scale_ins",
                    static_cast<double>(r.scaleIns));
            rep.set(prefix + "_admission_rejects",
                    static_cast<double>(r.admissionRejects));
            rep.set(prefix + "_lost_prefill_seconds",
                    r.lostPrefillSeconds);
        }
    }
    table.print();

    std::printf(
        "\nDesign note: a static fleet must be sized for a point on "
        "the arrival curve — the floor melts at the evening burst, "
        "the ceiling burns idle GPU-seconds through the trough. The "
        "controller rides the curve instead: the arrival-rate EWMA "
        "and queue-delay percentile order capacity before the burn "
        "rate confirms the damage, each scale-out pays an honest "
        "warm-up (boot + weight load over PCIe) before taking "
        "traffic through a half-open breaker, and scale-in drains "
        "and live-migrates so elasticity never torches in-flight "
        "prefill. Admission control converts the residual "
        "under-capacity into fast, retryable rejects instead of "
        "requests dying deep in a queue.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
