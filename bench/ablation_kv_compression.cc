/**
 * @file
 * Ablation (keytakeaway #9) — KV-cache compression: quantizing the
 * cache (FP16 -> FP8/INT4-class ratios) stretches a constrained pool
 * and shrinks decode's KV traffic, recovering the throughput that
 * Fig 17 shows small pools losing to thrashing.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("ablation_kv_compression");

    const auto weight_bytes = llm::llama31_8b().weightBytes();

    core::Table t("Ablation: KV-cache compression under a "
                  "constrained pool (ReAct on HotpotQA)");
    t.header({"Pool (% of weights)", "KV compression", "Hit rate",
              "p95", "Throughput"});

    for (double frac : {0.15, 0.30}) {
        for (double ratio : {1.0, 2.0, 4.0}) {
            ServeConfig cfg;
            cfg.agent = AgentKind::ReAct;
            cfg.bench = Benchmark::HotpotQA;
            cfg.engineConfig = core::enginePreset8b();
            cfg.engineConfig.model.kvCompression = ratio;
            cfg.engineConfig.kvPoolBytes = static_cast<std::int64_t>(
                frac * static_cast<double>(weight_bytes));
            cfg.qps = 1.2;
            cfg.numRequests = 100;
            cfg.seed = kSeed;
            telemetry.apply(cfg);
            const auto r = core::runServing(cfg);
            t.row({core::fmtPercent(frac, 0),
                   ratio == 1.0 ? "off (FP16)"
                                : core::fmtDouble(ratio, 0) + "x",
                   core::fmtPercent(r.cacheHitRate),
                   core::fmtSeconds(r.p95()),
                   core::fmtDouble(r.throughputQps(), 2)});
        }
    }
    t.print();

    std::printf("\nDesign note: realizes keytakeaway #9's \"KV cache "
                "compression techniques\" — the compressed cache "
                "holds more prefixes (less thrashing) and each decode "
                "step streams fewer KV bytes.\n");
    if (!telemetry.write())
        return 1;
    return 0;
}
