/**
 * @file
 * Fig 9 — token count per iterative reasoning step on HotpotQA: fixed
 * Instruction/Few-shot segments stay constant while LLM/tool history
 * accumulation grows the input context 3-4x over the request.
 */

#include <algorithm>
#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace benchutil;
    TelemetryCli telemetry(argc, argv);
    telemetry.report().setGenerator("fig09_context_growth");

    for (AgentKind agent :
         {AgentKind::ReAct, AgentKind::Reflexion, AgentKind::Lats,
          AgentKind::LlmCompiler}) {
        auto cfg = defaultProbe(agent, Benchmark::HotpotQA);
        telemetry.apply(cfg);
        const auto r = core::runProbe(cfg);

        // Average the i-th call's breakdown across requests.
        std::size_t max_calls = 0;
        for (const auto &req : r.requests)
            max_calls = std::max(max_calls, req.result.perCall.size());
        max_calls = std::min<std::size_t>(max_calls, 10);

        core::Table t("Fig 9: Context growth per LLM call — " +
                      std::string(agents::agentName(agent)) +
                      " (HotpotQA)");
        t.header({"Call #", "Instr", "Few-shot", "User", "LLM hist",
                  "Tool hist", "Input total", "Output"});
        double first_total = 0.0;
        double last_total = 0.0;
        for (std::size_t i = 0; i < max_calls; ++i) {
            agents::CallTokens sum;
            int count = 0;
            for (const auto &req : r.requests) {
                if (i < req.result.perCall.size()) {
                    sum += req.result.perCall[i];
                    ++count;
                }
            }
            if (count == 0)
                continue;
            const double c = count;
            const double total = sum.inputTotal() / c;
            if (i == 0)
                first_total = total;
            last_total = total;
            t.row({core::fmtCount(static_cast<double>(i + 1)),
                   core::fmtCount(sum.instruction / c),
                   core::fmtCount(sum.fewShot / c),
                   core::fmtCount(sum.user / c),
                   core::fmtCount(sum.llmHistory / c),
                   core::fmtCount(sum.toolHistory / c),
                   core::fmtCount(total),
                   core::fmtCount(sum.output / c)});
        }
        t.print();
        std::printf("Input growth over the request: %.1fx "
                    "(paper: ~1k tokens initially, growing 3-4x)\n\n",
                    last_total / first_total);
    }
    if (!telemetry.write())
        return 1;
    return 0;
}
