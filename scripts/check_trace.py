#!/usr/bin/env python3
"""Trace-validity gate: assert a bench run emitted a well-formed
Chrome trace and a non-empty blame export.

    check_trace.py trace.json [metrics.prom]
    check_trace.py --bundle <incident-bundle-dir | incidents-dir>

Positional mode checks, in order:
  1. The trace parses as Chrome trace-event JSON ({"traceEvents": [...]})
     and every event carries a name and a known phase.
  2. The span-exemplar track (pid 6) is present and well-formed:
     nestable-async begins/ends balance per span id, no "e" before
     its "b", nothing left open at end of trace.
  3. The metrics file (when given) contains a non-empty blame export:
     agentsim_blame_* families with a positive request count.

--bundle mode validates a flight-recorder incident bundle (or every
incident-*/ bundle under a directory of them):
  1. manifest.json follows the agentsim-incident-v1 schema with a
     known trigger, a well-ordered retroactive window ending at the
     trigger time, and a non-empty windowed blame table.
  2. trace.json parses; every event intersects the manifest window;
     the recorder's own "incident" span lanes balance begins/ends.
  3. timeseries.csv is non-empty, every sample lies inside the window,
     and its clock agrees with the trace's (shared sim timebase).

Exits non-zero with a one-line reason on the first violation.
"""

import json
import os
import sys

SPAN_PID = 6  # telemetry::TracePid::kSpans
KNOWN_PHASES = {"X", "i", "C", "M", "b", "e"}
KNOWN_TRIGGERS = {"slo_burn", "brownout", "breaker_open", "autoscale",
                  "deadline_miss_spike"}
CLOCK_EPS_S = 1e-3  # tolerance between trace/timeseries clocks


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not parseable as JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")

    open_spans: dict[tuple[int, str], int] = {}
    span_events = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{path}: event #{i} has unknown phase {ph!r}")
        if ph != "M" and "name" not in ev:
            fail(f"{path}: event #{i} ({ph}) has no name")
        if ev.get("pid") != SPAN_PID or ph not in ("b", "e"):
            continue
        span_events += 1
        key = (ev["pid"], ev.get("id", ""))
        if ph == "b":
            open_spans[key] = open_spans.get(key, 0) + 1
        else:
            depth = open_spans.get(key, 0)
            if depth == 0:
                fail(f"{path}: event #{i} ends span id "
                     f"{key[1]} that was never begun")
            open_spans[key] = depth - 1

    if span_events == 0:
        fail(f"{path}: no span exemplars on trace pid {SPAN_PID}")
    leaked = {k: d for k, d in open_spans.items() if d != 0}
    if leaked:
        fail(f"{path}: {len(leaked)} span id(s) left open: "
             f"{sorted(k[1] for k in leaked)[:5]}")
    print(f"check_trace: {path}: {len(events)} events, "
          f"{span_events} span events, all balanced")


def check_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: unreadable: {e}")

    blame = [l for l in lines
             if l.startswith("agentsim_blame_") and not l.startswith("#")]
    if not blame:
        fail(f"{path}: no agentsim_blame_* samples (empty blame table)")
    requests = 0.0
    for line in blame:
        if line.startswith("agentsim_blame_requests"):
            try:
                requests += float(line.rsplit(None, 1)[-1])
            except ValueError:
                fail(f"{path}: unparseable sample: {line!r}")
    if requests <= 0:
        fail(f"{path}: blame export covers zero requests")
    print(f"check_trace: {path}: {len(blame)} blame samples, "
          f"{requests:.0f} requests blamed")


def check_bundle(bundle: str) -> None:
    manifest_path = os.path.join(bundle, "manifest.json")
    try:
        with open(manifest_path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{manifest_path}: not parseable as JSON: {e}")

    # 1. Manifest schema, window ordering, non-empty windowed blame.
    if manifest.get("schema") != "agentsim-incident-v1":
        fail(f"{manifest_path}: unknown schema "
             f"{manifest.get('schema')!r}")
    trigger = manifest.get("trigger")
    if trigger not in KNOWN_TRIGGERS:
        fail(f"{manifest_path}: unknown trigger {trigger!r}")
    try:
        w_from = float(manifest["window_from_s"])
        w_to = float(manifest["window_to_s"])
        t_trig = float(manifest["trigger_time_s"])
    except (KeyError, TypeError, ValueError) as e:
        fail(f"{manifest_path}: bad window bounds: {e}")
    if not w_from <= w_to:
        fail(f"{manifest_path}: window [{w_from}, {w_to}] is reversed")
    if abs(w_to - t_trig) > CLOCK_EPS_S:
        fail(f"{manifest_path}: window ends at {w_to} but trigger "
             f"fired at {t_trig}")
    blame = manifest.get("blame_seconds")
    if not isinstance(blame, dict) or not blame:
        fail(f"{manifest_path}: missing blame_seconds table")
    spans_in_window = int(manifest.get("span_completions", 0))
    if spans_in_window > 0:
        total = float(manifest.get("blame_total_seconds", 0.0))
        if total <= 0 or all(v <= 0 for v in blame.values()):
            fail(f"{manifest_path}: {spans_in_window} span "
                 f"completions but an empty windowed blame table")

    # 2. Bundle trace: parses, events intersect the window, the
    #    recorder's own incident span lanes balance.
    trace_path = os.path.join(bundle, "trace.json")
    try:
        with open(trace_path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{trace_path}: not parseable as JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{trace_path}: no traceEvents array")

    from_us = (w_from - CLOCK_EPS_S) * 1e6
    to_us = (w_to + CLOCK_EPS_S) * 1e6
    open_lanes: dict[str, int] = {}
    incident_begins = 0
    trace_min_us = None
    trace_max_us = None
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{trace_path}: event #{i} has unknown phase {ph!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{trace_path}: event #{i} has no timestamp")
        end = ts + ev.get("dur", 0)
        if end < from_us or ts > to_us:
            fail(f"{trace_path}: event #{i} ({ev.get('name')!r}) "
                 f"lies outside the window "
                 f"[{w_from:.3f}s, {w_to:.3f}s]")
        trace_min_us = ts if trace_min_us is None else min(
            trace_min_us, ts)
        trace_max_us = end if trace_max_us is None else max(
            trace_max_us, end)
        if ev.get("cat") != "incident" or ph not in ("b", "e"):
            continue
        lane = str(ev.get("id", ""))
        if ph == "b":
            incident_begins += 1
            open_lanes[lane] = open_lanes.get(lane, 0) + 1
        else:
            if open_lanes.get(lane, 0) == 0:
                fail(f"{trace_path}: incident lane {lane} ends "
                     f"before it begins")
            open_lanes[lane] -= 1
    leaked = [k for k, d in open_lanes.items() if d != 0]
    if leaked:
        fail(f"{trace_path}: {len(leaked)} incident lane(s) left "
             f"open: {leaked[:5]}")
    if incident_begins != spans_in_window:
        fail(f"{trace_path}: {incident_begins} incident lanes but "
             f"manifest declares {spans_in_window} span completions")

    # 3. Time series: in-window samples on the same clock.
    ts_path = os.path.join(bundle, "timeseries.csv")
    try:
        with open(ts_path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{ts_path}: unreadable: {e}")
    if not lines or lines[0] != "series,time_s,value":
        fail(f"{ts_path}: missing series,time_s,value header")
    samples = 0
    ts_min = None
    ts_max = None
    for line in lines[1:]:
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != 3:
            fail(f"{ts_path}: malformed row {line!r}")
        try:
            t = float(parts[1])
            float(parts[2])
        except ValueError:
            fail(f"{ts_path}: unparseable row {line!r}")
        if t < w_from - CLOCK_EPS_S or t > w_to + CLOCK_EPS_S:
            fail(f"{ts_path}: sample at {t}s outside the window "
                 f"[{w_from:.3f}s, {w_to:.3f}s]")
        ts_min = t if ts_min is None else min(ts_min, t)
        ts_max = t if ts_max is None else max(ts_max, t)
        samples += 1
    if samples == 0:
        fail(f"{ts_path}: no time-series samples in the window")
    # Clock agreement: both artifacts cover overlapping sim time.
    if trace_min_us is not None and ts_min is not None:
        if ts_max * 1e6 < trace_min_us - CLOCK_EPS_S * 1e6 or \
           ts_min * 1e6 > trace_max_us + CLOCK_EPS_S * 1e6:
            fail(f"{bundle}: time-series span [{ts_min}, {ts_max}]s "
                 f"never overlaps the trace span "
                 f"[{trace_min_us / 1e6}, {trace_max_us / 1e6}]s — "
                 f"clock disagreement")

    print(f"check_trace: {bundle}: trigger {trigger}, window "
          f"[{w_from:.3f}s, {w_to:.3f}s], {len(events)} events, "
          f"{incident_begins} blamed spans, {samples} time-series "
          f"samples")


def check_bundles(path: str) -> None:
    if os.path.isfile(os.path.join(path, "manifest.json")):
        check_bundle(path)
        return
    bundles = sorted(
        os.path.join(path, d) for d in os.listdir(path)
        if d.startswith("incident-") and
        os.path.isdir(os.path.join(path, d))) if os.path.isdir(
            path) else []
    if not bundles:
        fail(f"{path}: no incident bundles found")
    for bundle in bundles:
        check_bundle(bundle)


def main(argv: list[str]) -> None:
    if len(argv) == 3 and argv[1] == "--bundle":
        check_bundles(argv[2])
        print("check_trace: OK")
        return
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(argv[1])
    if len(argv) == 3:
        check_metrics(argv[2])
    print("check_trace: OK")


if __name__ == "__main__":
    main(sys.argv)
