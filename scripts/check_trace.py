#!/usr/bin/env python3
"""Trace-validity gate: assert a bench run emitted a well-formed
Chrome trace and a non-empty blame export.

    check_trace.py trace.json [metrics.prom]

Checks, in order:
  1. The trace parses as Chrome trace-event JSON ({"traceEvents": [...]})
     and every event carries a name and a known phase.
  2. The span-exemplar track (pid 6) is present and well-formed:
     nestable-async begins/ends balance per span id, no "e" before
     its "b", nothing left open at end of trace.
  3. The metrics file (when given) contains a non-empty blame export:
     agentsim_blame_* families with a positive request count.

Exits non-zero with a one-line reason on the first violation.
"""

import json
import sys

SPAN_PID = 6  # telemetry::TracePid::kSpans
KNOWN_PHASES = {"X", "i", "C", "M", "b", "e"}


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not parseable as JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")

    open_spans: dict[tuple[int, str], int] = {}
    span_events = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{path}: event #{i} has unknown phase {ph!r}")
        if ph != "M" and "name" not in ev:
            fail(f"{path}: event #{i} ({ph}) has no name")
        if ev.get("pid") != SPAN_PID or ph not in ("b", "e"):
            continue
        span_events += 1
        key = (ev["pid"], ev.get("id", ""))
        if ph == "b":
            open_spans[key] = open_spans.get(key, 0) + 1
        else:
            depth = open_spans.get(key, 0)
            if depth == 0:
                fail(f"{path}: event #{i} ends span id "
                     f"{key[1]} that was never begun")
            open_spans[key] = depth - 1

    if span_events == 0:
        fail(f"{path}: no span exemplars on trace pid {SPAN_PID}")
    leaked = {k: d for k, d in open_spans.items() if d != 0}
    if leaked:
        fail(f"{path}: {len(leaked)} span id(s) left open: "
             f"{sorted(k[1] for k in leaked)[:5]}")
    print(f"check_trace: {path}: {len(events)} events, "
          f"{span_events} span events, all balanced")


def check_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: unreadable: {e}")

    blame = [l for l in lines
             if l.startswith("agentsim_blame_") and not l.startswith("#")]
    if not blame:
        fail(f"{path}: no agentsim_blame_* samples (empty blame table)")
    requests = 0.0
    for line in blame:
        if line.startswith("agentsim_blame_requests"):
            try:
                requests += float(line.rsplit(None, 1)[-1])
            except ValueError:
                fail(f"{path}: unparseable sample: {line!r}")
    if requests <= 0:
        fail(f"{path}: blame export covers zero requests")
    print(f"check_trace: {path}: {len(blame)} blame samples, "
          f"{requests:.0f} requests blamed")


def main(argv: list[str]) -> None:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(argv[1])
    if len(argv) == 3:
        check_metrics(argv[2])
    print("check_trace: OK")


if __name__ == "__main__":
    main(sys.argv)
