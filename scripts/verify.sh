#!/usr/bin/env bash
# Full verification matrix: configure, build and test every CMake
# preset (default, asan, ubsan, tsan), then gate the perf report
# against the committed baseline with perf_report_diff.
#
#   scripts/verify.sh                 # everything
#   AGENTSIM_PRESETS="default" scripts/verify.sh   # subset
#   AGENTSIM_PERF_THRESHOLD=0.10 scripts/verify.sh # looser gate
#   AGENTSIM_EVENTS_FLOOR=50000 scripts/verify.sh  # events/s floor
set -euo pipefail
cd "$(dirname "$0")/.."

read -ra presets <<< "${AGENTSIM_PRESETS:-default asan ubsan tsan}"
jobs="${JOBS:-$(nproc)}"

for preset in "${presets[@]}"; do
    echo "==> preset: ${preset}"
    cmake --preset "${preset}" > /dev/null
    if [[ "${preset}" == "tsan" ]]; then
        # TSan exists to race-check the parallel engine; building and
        # running the whole single-threaded matrix under it would
        # triple verify time for no extra signal.
        cmake --build --preset tsan -j "${jobs}" \
            --target parallel_sim_test sim_throughput
        ctest --preset tsan -j "${jobs}" -R 'BucketQueue|FramePool|Sharded'
        build-tsan/bench/sim_throughput --smoke > /dev/null
    else
        cmake --build --preset "${preset}" -j "${jobs}"
        ctest --preset "${preset}" -j "${jobs}"
    fi
done

# Perf regression gate: regenerate the baseline bench's report with
# the default-preset build and diff it against the committed one.
# Sim-domain metrics are deterministic, so any drift is a real
# behaviour change; sim_* self-timing entries are informational only.
echo "==> perf report gate (fig14_qps_sweep vs BENCH_agentsim.json)"
report="$(mktemp)"
trace="$(mktemp)"
prom="$(mktemp)"
trap 'rm -f "${report}" "${trace}" "${prom}"' EXIT
build/bench/fig14_qps_sweep --report "${report}" > /dev/null
# The relative diff never gates host-noisy sim_* metrics, so the
# simulator's own throughput gets an absolute catastrophe floor
# instead (docs/DETERMINISM.md "What is exempt"). 50k events/s is
# ~5x below what a 1-core container sustains.
build/bench/perf_report_diff BENCH_agentsim.json "${report}" \
    --threshold "${AGENTSIM_PERF_THRESHOLD:-0.05}" \
    --floor "sim_events_per_second=${AGENTSIM_EVENTS_FLOOR:-50000}"

# Parallel-engine gate: determinism (parallel == sequential,
# run-to-run) is asserted inside the bench at every shard count; the
# same events/s floor applies to its sharded throughput headline.
echo "==> parallel engine gate (sim_throughput --smoke)"
sim_report="$(mktemp)"
trap 'rm -f "${report}" "${trace}" "${prom}" "${sim_report}"' EXIT
build/bench/sim_throughput --smoke --report "${sim_report}" > /dev/null
build/bench/perf_report_diff "${sim_report}" "${sim_report}" \
    --floor "sim_events_per_second=${AGENTSIM_EVENTS_FLOOR:-50000}" \
    > /dev/null

# Trace-validity gate: a smoke serving run must emit a parseable
# Chrome trace with balanced span exemplars and a non-empty blame
# export (DESIGN.md §3g).
echo "==> trace validity gate (tail_blame --smoke)"
build/bench/tail_blame --smoke --trace "${trace}" \
    --metrics "${prom}" > /dev/null
python3 scripts/check_trace.py "${trace}" "${prom}"

# Incident-capture gate: the chaos smoke run's injected engine stalls
# must trip the SLO burn alerter and dump at least one incident
# bundle whose window and blame table pass schema validation
# (DESIGN.md §3i).
echo "==> incident capture gate (chaos_slo --smoke --flight-record)"
incidents="$(mktemp -d)"
trap 'rm -f "${report}" "${trace}" "${prom}"; rm -rf "${incidents}"' EXIT
build/bench/chaos_slo --smoke --flight-record \
    --incident-dir "${incidents}" > /dev/null
python3 scripts/check_trace.py --bundle "${incidents}"

# Chaos/recovery gate: both chaos smokes must pass under asan — the
# crash/resume path (checkpointed state, parked tier blocks,
# cancelled coroutines) is where lifetime bugs hide. chaos_recovery
# additionally gates fault-schedule determinism and the >= 50%
# recomputed-GPU-seconds reduction (DESIGN.md §3j). Skipped when the
# asan preset was excluded from AGENTSIM_PRESETS.
if [[ " ${presets[*]} " == *" asan "* ]]; then
    echo "==> chaos recovery gate (chaos_slo + chaos_recovery --smoke, asan)"
    build-asan/bench/chaos_slo --smoke > /dev/null
    build-asan/bench/chaos_recovery --smoke > /dev/null
fi

echo "verify: OK (${presets[*]})"
