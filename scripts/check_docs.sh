#!/usr/bin/env bash
# Documentation gate, run by the CI `docs` job (and locally).
#
#  1. Every relative markdown link in the repo's *.md files must
#     point at a file that exists.
#  2. If doxygen is installed, the API reference must build with an
#     empty warning log (docs/Doxyfile routes warnings to a file;
#     WARN_IF_DOC_ERROR covers malformed doc blocks). Skipped with a
#     notice when doxygen is absent, so the script stays runnable in
#     minimal containers.
#
# Usage: scripts/check_docs.sh   (from the repository root)
set -u

cd "$(dirname "$0")/.."
status=0

# --- 1. Dead relative markdown links ------------------------------
echo "== checking relative markdown links =="
# Tracked markdown only: build trees may hold generated copies.
mapfile -t md_files < <(git ls-files '*.md')
for md in "${md_files[@]}"; do
    dir=$(dirname "$md")
    # Inline links: capture the (...) target of [text](target).
    while IFS= read -r target; do
        # External, intra-page, and mail links are out of scope.
        case "$target" in
            http://*|https://*|\#*|mailto:*) continue ;;
        esac
        path="${target%%#*}"           # strip any #anchor
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "DEAD LINK: $md -> $target"
            status=1
        fi
    done < <(grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done
if [ "$status" -eq 0 ]; then
    echo "ok: ${#md_files[@]} markdown files, no dead relative links"
fi

# --- 2. Stale knob names in the operations guide ------------------
# OPERATIONS.md documents knobs as `Struct::field`; every such token
# must still exist in src/ (struct renamed or field dropped => the
# runbook is lying). Method names ride along for free — they are
# code identifiers too.
echo "== checking OPERATIONS.md knob names against src/ =="
stale=0
checked=0
while IFS= read -r token; do
    struct="${token%%::*}"
    field="${token##*::}"
    checked=$((checked + 1))
    # The struct (or class) must be declared, and the field/member
    # must appear, somewhere under src/.
    if ! grep -rqE "(struct|class) +$struct\b" src/; then
        echo "STALE KNOB: $token — no struct/class $struct in src/"
        stale=1
        continue
    fi
    if ! grep -rq "$field" src/; then
        echo "STALE KNOB: $token — identifier $field not found in src/"
        stale=1
    fi
done < <(grep -oE '`[A-Z][A-Za-z]+::[A-Za-z]+' docs/OPERATIONS.md \
             | sed 's/^`//' | sort -u)
if [ "$stale" -ne 0 ]; then
    status=1
else
    echo "ok: $checked documented knob names all exist in src/"
fi

# --- 3. Doxygen warnings ------------------------------------------
if command -v doxygen > /dev/null 2>&1; then
    echo "== building API reference (doxygen) =="
    mkdir -p build/docs
    if ! doxygen docs/Doxyfile > /dev/null; then
        echo "doxygen failed"
        status=1
    fi
    warnlog=build/docs/doxygen-warnings.log
    if [ -s "$warnlog" ]; then
        echo "doxygen warnings (must be zero):"
        cat "$warnlog"
        status=1
    else
        echo "ok: doxygen build is warning-clean"
    fi
else
    echo "notice: doxygen not installed; skipping API-reference check"
fi

exit "$status"
